//! The soundness harness: static prediction ⊇ dynamic observation.
//!
//! A static analyzer for energy attacks is only trustworthy if it never
//! misses: every attack period the dynamic [`ea_core::CollateralMonitor`]
//! records must have been predicted, for the same UID, by some static
//! diagnostic. This module turns that contract into a checkable function:
//! extract the `(driving uid, AttackKind)` pairs a run observed, then
//! verify each pair appears in the [`LintReport`] produced *before* the
//! run. Scenario tests and the proptest harness both call through here.

use ea_core::{AttackKind, AttackRecord};

use crate::linter::LintReport;

/// One dynamically observed attack the static pass failed to predict.
#[derive(Debug, Clone, PartialEq)]
pub struct SoundnessViolation {
    /// UID of the driving (attacking) app.
    pub uid: u32,
    /// The observed attack kind with no matching static prediction.
    pub kind: AttackKind,
}

impl std::fmt::Display for SoundnessViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "uid {} dynamically drove {} but no static diagnostic predicted it",
            self.uid, self.kind
        )
    }
}

/// Deduplicated `(driving uid, kind)` pairs from an attack history.
pub fn observed_attacks(history: &[AttackRecord]) -> Vec<(u32, AttackKind)> {
    let mut pairs: Vec<(u32, AttackKind)> = Vec::new();
    for record in history {
        let pair = (record.info.driving.as_raw(), record.info.kind);
        if !pairs.contains(&pair) {
            pairs.push(pair);
        }
    }
    pairs
}

/// Checks the superset property: every observed pair must be predicted by
/// a diagnostic for the same UID. Returns the misses (empty = sound).
pub fn check_superset(
    report: &LintReport,
    observed: &[(u32, AttackKind)],
) -> Vec<SoundnessViolation> {
    observed
        .iter()
        .filter(|(uid, kind)| !report.predicted_kinds(*uid).contains(kind))
        .map(|&(uid, kind)| SoundnessViolation { uid, kind })
        .collect()
}

/// A diagnostic whose static energy bound was exceeded by a dynamically
/// measured collateral attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantitativeViolation {
    /// UID of the driving (attacking) app.
    pub uid: u32,
    /// The undershooting rule's qualified id.
    pub rule: String,
    /// Joules of collateral the dynamic monitor attributed.
    pub measured_joules: f64,
    /// The diagnostic's static bound.
    pub bound_joules: f64,
}

impl std::fmt::Display for QuantitativeViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "uid {}: {} claimed a bound of {:.1} J but {:.1} J of collateral was measured",
            self.uid, self.rule, self.bound_joules, self.measured_joules
        )
    }
}

/// Checks the quantitative half of the soundness contract: for every
/// `(driving uid, measured collateral joules)` pair, the **strongest**
/// `predicted_joules` bound among that UID's priced diagnostics (those
/// predicting at least one attack kind) must dominate the measurement.
/// Returns the violations (empty = sound).
///
/// The collateral graph attributes energy per `(driver, victim)` with no
/// kind dimension, so per-victim rows are the finest measurable split —
/// and they dominate any per-`(victim, kind)` refinement, so passing
/// here implies the per-triple bound. Each diagnostic only bounds the
/// collateral of the kinds *it* predicts (a one-app system prices
/// interruption at zero, legitimately), so the comparison is against the
/// UID's overall envelope: its best priced bound. Surface diagnostics
/// with an empty prediction set (EA0008) make no exploitation claim and
/// never supply the bound; a UID with measured collateral and *no*
/// priced diagnostic at all is itself a violation.
pub fn check_quantitative(
    report: &LintReport,
    measured: &[(u32, f64)],
) -> Vec<QuantitativeViolation> {
    let mut violations = Vec::new();
    for &(uid, measured_joules) in measured {
        let best = report
            .diagnostics
            .iter()
            .filter(|diag| diag.uid == Some(uid) && !diag.predicted.is_empty())
            .max_by(|a, b| a.predicted_joules.total_cmp(&b.predicted_joules));
        match best {
            Some(diag) if diag.predicted_joules >= measured_joules => {}
            Some(diag) => violations.push(QuantitativeViolation {
                uid,
                rule: diag.rule.to_string(),
                measured_joules,
                bound_joules: diag.predicted_joules,
            }),
            None => violations.push(QuantitativeViolation {
                uid,
                rule: "(no priced diagnostic)".to_string(),
                measured_joules,
                bound_joules: 0.0,
            }),
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::{Diagnostic, RuleId, Severity};

    fn diag(uid: u32, predicted: Vec<AttackKind>) -> Diagnostic {
        Diagnostic {
            rule: RuleId::WakelockHold,
            severity: Severity::Warning,
            package: format!("com.app.{uid}"),
            uid: Some(uid),
            predicted,
            message: String::new(),
            evidence: Vec::new(),
            component: None,
            predicted_joules: 1_000.0,
            energy_breakdown: Vec::new(),
            energy_rank: 0,
        }
    }

    #[test]
    fn superset_holds_when_every_pair_is_predicted() {
        let report = LintReport {
            diagnostics: vec![
                diag(10_000, vec![AttackKind::WakelockLeak]),
                diag(
                    10_001,
                    vec![AttackKind::ActivityStart, AttackKind::Interruption],
                ),
            ],
            apps_checked: 2,
        };
        let observed = vec![
            (10_000, AttackKind::WakelockLeak),
            (10_001, AttackKind::Interruption),
        ];
        assert!(check_superset(&report, &observed).is_empty());
    }

    #[test]
    fn miss_is_reported_per_uid_and_kind() {
        let report = LintReport {
            diagnostics: vec![diag(10_000, vec![AttackKind::WakelockLeak])],
            apps_checked: 1,
        };
        let observed = vec![
            (10_000, AttackKind::ScreenConfig),
            (10_002, AttackKind::WakelockLeak),
        ];
        let violations = check_superset(&report, &observed);
        assert_eq!(violations.len(), 2);
        assert!(violations[0].to_string().contains("ScreenConfig"));
    }

    #[test]
    fn over_approximation_is_fine() {
        let report = LintReport {
            diagnostics: vec![diag(10_000, vec![AttackKind::WakelockLeak])],
            apps_checked: 1,
        };
        // Nothing observed at all: still sound.
        assert!(check_superset(&report, &[]).is_empty());
    }

    #[test]
    fn quantitative_bound_must_dominate_each_measurement() {
        let report = LintReport {
            diagnostics: vec![diag(10_000, vec![AttackKind::WakelockLeak])],
            apps_checked: 1,
        };
        // Bound is 1 000 J: 900 J measured is fine, 1 500 J is not.
        assert!(check_quantitative(&report, &[(10_000, 900.0)]).is_empty());
        assert!(check_quantitative(&report, &[(10_000, 1_000.0)]).is_empty());
        let violations = check_quantitative(&report, &[(10_000, 1_500.0)]);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].bound_joules, 1_000.0);
        assert!(violations[0].to_string().contains("EA0006"));
        // Measured collateral from a UID with no diagnostics at all is a
        // miss, not an exemption.
        let unclaimed = check_quantitative(&report, &[(10_001, 1e9)]);
        assert_eq!(unclaimed.len(), 1);
        assert_eq!(unclaimed[0].uid, 10_001);
    }

    #[test]
    fn weaker_sibling_diagnostics_do_not_break_the_envelope() {
        // A rule pricing only its own attack surface (e.g. interruption
        // in a one-app system) may bound below the measurement; the UID's
        // envelope is its *best* priced bound.
        let mut cheap = diag(10_000, vec![AttackKind::Interruption]);
        cheap.predicted_joules = 0.0;
        let report = LintReport {
            diagnostics: vec![cheap, diag(10_000, vec![AttackKind::WakelockLeak])],
            apps_checked: 1,
        };
        assert!(check_quantitative(&report, &[(10_000, 900.0)]).is_empty());
        // ...but the envelope itself must still dominate.
        let violations = check_quantitative(&report, &[(10_000, 1_500.0)]);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].bound_joules, 1_000.0);
    }

    #[test]
    fn surface_diagnostics_never_supply_the_bound() {
        let mut surface = diag(10_000, Vec::new());
        surface.predicted_joules = 1e9;
        let report = LintReport {
            diagnostics: vec![surface],
            apps_checked: 1,
        };
        // Only a surface diagnostic: measured collateral has no priced
        // claim covering it at all.
        let violations = check_quantitative(&report, &[(10_000, 1_500.0)]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].to_string().contains("no priced diagnostic"));
    }
}
