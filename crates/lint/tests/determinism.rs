//! Report determinism under input permutation: the analyzer's output —
//! diagnostic order, energy bounds, energy ranks, and the rendered text
//! and JSON — must not depend on the order apps were installed in. The
//! sort key `(rule, package, component)` pins the order; the package-
//! ordered aggregation inside the solver pins the floats bit-for-bit.

use ea_framework::{AppManifest, Permission};
use ea_lint::render::{to_json, to_text};
use ea_lint::Linter;

/// A mixed world that trips most rules: hijack/spray targets, a tethered
/// service, an overlay app, settings and wakelock permissions, an
/// autostart receiver, and an implicit-intent relay.
fn world() -> Vec<AppManifest> {
    vec![
        AppManifest::builder("com.shuffle.victim")
            .activity("Main", true)
            .service("Sync", true)
            .build(),
        AppManifest::builder("com.shuffle.overlay")
            .activity("Main", false)
            .transparent_activity("Ghost", false)
            .permission(Permission::SystemAlertWindow)
            .build(),
        AppManifest::builder("com.shuffle.waker")
            .activity("Main", true)
            .permission(Permission::WakeLock)
            .permission(Permission::WriteSettings)
            .build(),
        AppManifest::builder("com.shuffle.relay")
            .activity_with_actions("Share", true, &["shuffle.SEND"])
            .activity_with_actions("Emit", false, &["shuffle.VIEW"])
            .build(),
        AppManifest::builder("com.shuffle.sink")
            .activity_with_actions("Open", true, &["shuffle.VIEW"])
            .build(),
        AppManifest::builder("com.shuffle.origin")
            .activity_with_actions("Main", false, &["shuffle.SEND"])
            .build(),
    ]
}

/// A fixed set of permutations covering rotations and a reversal — enough
/// to catch any install-order dependence without randomness in the test.
fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut orders = Vec::new();
    for rotate in 0..n {
        orders.push((0..n).map(|i| (i + rotate) % n).collect());
    }
    orders.push((0..n).rev().collect());
    orders
}

#[test]
fn report_is_identical_for_every_install_order() {
    let apps = world();
    let baseline = Linter::new().lint_manifests(&apps);
    assert!(
        baseline.diagnostics.len() >= 6,
        "the world must be rule-dense enough to make ordering interesting"
    );
    let baseline_text = to_text(&baseline);
    let baseline_json = to_json(&baseline);

    for order in permutations(apps.len()) {
        let shuffled: Vec<AppManifest> = order.iter().map(|&i| apps[i].clone()).collect();
        let report = Linter::new().lint_manifests(&shuffled);

        // The structural sort key holds pair by pair…
        let keys = |r: &ea_lint::LintReport| {
            r.diagnostics
                .iter()
                .map(|d| (d.rule, d.package.clone(), d.component.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(keys(&baseline), keys(&report), "order {order:?}");

        // …and so do the floats and the ranks, bit for bit: the rendered
        // artifacts are byte-identical.
        assert_eq!(baseline_text, to_text(&report), "order {order:?}");
        assert_eq!(baseline_json, to_json(&report), "order {order:?}");
    }
}
