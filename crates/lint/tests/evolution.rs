//! The revision-regression ladder: one corpus app mutated across
//! synthetic releases, each release diffed against the previous one with
//! [`BaselineDiff`]. Every rung adds exactly one energy-attack pattern,
//! and the diff must (a) flag the release as a regression, (b) attribute
//! the introduction to the expected rule, and (c) never claim changes
//! between identical inputs. This is the CI contract of
//! `eandroid lint --baseline` end to end, minus the process boundary.

use ea_framework::{AndroidSystem, AppManifest, Permission};
use ea_lint::render::{json_report, JsonReport};
use ea_lint::{BaselineDiff, Linter};

/// The stable co-installed world the mutating app ships into.
fn neighbors() -> Vec<AppManifest> {
    vec![
        AppManifest::builder("com.evo.store")
            .activity("Front", true)
            .service("Sync", true)
            .build(),
        AppManifest::builder("com.evo.reader")
            .activity("Page", true)
            .build(),
    ]
}

/// Release `n` of `com.evo.subject`: each release keeps everything the
/// previous one had and adds one more energy-attack pattern.
fn release(n: usize) -> AppManifest {
    let mut builder = AppManifest::builder("com.evo.subject").activity("Main", true);
    if n >= 1 {
        builder = builder.permission(Permission::WakeLock);
    }
    if n >= 2 {
        builder = builder.permission(Permission::WriteSettings);
    }
    if n >= 3 {
        builder = builder
            .transparent_activity("Ghost", false)
            .permission(Permission::SystemAlertWindow);
    }
    if n >= 4 {
        builder = builder.receiver("Unlock", true, &[AndroidSystem::ACTION_USER_PRESENT]);
    }
    builder.build()
}

fn lint_release(n: usize) -> JsonReport {
    let mut apps = neighbors();
    apps.push(release(n));
    json_report(&Linter::new().lint_manifests(&apps))
}

#[test]
fn each_release_introduces_its_pattern_and_fails_the_gate() {
    // Rung → the rule code whose first appearance that rung causes.
    let ladder = [
        (1, "EA0006"), // + WakeLock: invisible wakelock hold
        (2, "EA0005"), // + WriteSettings: brightness tamper
        (3, "EA0004"), // + transparent overlay page
        (4, "EA0008"), // + ACTION_USER_PRESENT autostart receiver
    ];
    for (n, expected_rule) in ladder {
        let baseline = lint_release(n - 1);
        let current = lint_release(n);
        let diff = BaselineDiff::compare(&baseline, &current);

        assert!(
            diff.has_regressions(),
            "release r{n} must fail the regression gate"
        );
        assert!(
            diff.introduced
                .iter()
                .any(|e| e.rule.starts_with(expected_rule) && e.package == "com.evo.subject"),
            "release r{n} must introduce {expected_rule} for the subject, got: {:?}",
            diff.introduced
                .iter()
                .map(|e| format!("{} {}", e.rule, e.package))
                .collect::<Vec<_>>()
        );
        // Introductions carry a fresh energy bound and no baseline bound.
        for entry in &diff.introduced {
            assert!(entry.joules_before.is_none());
            assert!(entry.joules_after.unwrap_or(0.0) > 0.0);
        }
    }
}

#[test]
fn the_ladder_accumulates_monotonically() {
    // Diffing r0 straight against r4 sees every rung at once, and nothing
    // is ever fixed along the way: the subject only gets worse.
    let diff = BaselineDiff::compare(&lint_release(0), &lint_release(4));
    for rule in ["EA0004", "EA0005", "EA0006", "EA0008"] {
        assert!(
            diff.introduced
                .iter()
                .any(|e| e.rule.starts_with(rule) && e.package == "com.evo.subject"),
            "cumulative diff must contain {rule}"
        );
    }
    assert!(
        diff.fixed.is_empty(),
        "a strictly additive ladder fixes nothing"
    );
}

#[test]
fn identical_releases_diff_clean_at_every_rung() {
    for n in 0..=4 {
        let diff = BaselineDiff::compare(&lint_release(n), &lint_release(n));
        assert!(diff.is_clean(), "r{n} vs itself must be a zero delta");
        assert!(!diff.has_regressions());
    }
}
