//! Golden-file tests for the renderers: a fixed app set must render
//! byte-identically forever. Rule IDs, ordering, and field layout are an
//! output contract — CI diffs, dashboards, and the paper-reproduction
//! scripts all parse this output.
//!
//! To regenerate after an intentional format change:
//! `GOLDEN_BLESS=1 cargo test -p ea-lint --test golden`, then review the
//! diff under `crates/lint/tests/golden/`.

use ea_framework::{AndroidSystem, AppManifest, Permission};
use ea_lint::{render, LintSystem};

/// A miniature of the demo world: a victim-style app with an exported
/// service and a wakelock, plus a malware-style app with every attack
/// precondition (mirrors `com.fungame.sprint`).
fn fixture() -> AndroidSystem {
    let mut android = AndroidSystem::new();
    android.install(
        AppManifest::builder("com.example.victim")
            .category("productivity")
            .activity("Main", true)
            .service("Worker", true)
            .permission(Permission::WakeLock)
            .build(),
    );
    android.install(
        AppManifest::builder("com.fungame.sprint")
            .category("game")
            .activity("Game", true)
            .transparent_activity("Ghost", false)
            .service("Daemon", false)
            .receiver(
                "UnlockListener",
                true,
                &[AndroidSystem::ACTION_USER_PRESENT],
            )
            .permission(Permission::WakeLock)
            .permission(Permission::WriteSettings)
            .permission(Permission::SystemAlertWindow)
            .build(),
    );
    android
}

fn check_golden(name: &str, expected: &str, actual: &str) {
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/golden")
            .join(name);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    assert_eq!(
        expected, actual,
        "golden file {name} is stale; regenerate with GOLDEN_BLESS=1 and review the diff"
    );
}

#[test]
fn text_rendering_matches_golden() {
    let report = fixture().lint();
    check_golden(
        "demo.txt",
        include_str!("golden/demo.txt"),
        &render::to_text(&report),
    );
}

#[test]
fn json_rendering_matches_golden() {
    let report = fixture().lint();
    check_golden(
        "demo.json",
        include_str!("golden/demo.json"),
        &render::to_json(&report),
    );
}

#[test]
fn golden_json_is_valid_and_complete() {
    let report = fixture().lint();
    let value: serde_json::Value =
        serde_json::from_str(&render::to_json(&report)).expect("golden JSON parses");
    assert_eq!(value["diagnostics"].as_array().unwrap().len(), report.len());
    // The malware-style app trips the critical overlay and settings rules.
    let severities: Vec<&str> = value["diagnostics"]
        .as_array()
        .unwrap()
        .iter()
        .map(|d| d["severity"].as_str().unwrap())
        .collect();
    assert!(severities.contains(&"CRITICAL"));
}
