//! The k-hop acceptance world: a four-hop implicit-intent relay that the
//! old two-hop chain pass provably could not report. Five apps form a
//! vocabulary-gated ladder — each rung's action is only emittable by the
//! app one step up — so the only feasible route from the origin to the
//! final handler is four hops long. The fixpoint engine finds it with a
//! full witness; a depth-2 truncation of the same solver misses it; and
//! every legacy two-hop chain ending at the deep target is emission-
//! infeasible, which is exactly why the old pass could never claim it.

use ea_framework::AppManifest;
use ea_lint::{AbsintSolution, AppFacts, LintContext, Linter, Pricer, RuleId};
use ea_power::DevicePowerModel;

const WITNESS: &str = "com.hop.a -[hop.ONE]-> com.hop.b/H1 -[hop.TWO]-> com.hop.c/H2 \
                       -[hop.THREE]-> com.hop.d/H3 -[hop.FOUR]-> com.hop.e/H4";

/// `com.hop.a` can emit only `hop.ONE` (declared on an internal activity:
/// vocabulary, not a resolver entry). Each relay app handles the previous
/// rung's action and declares the next one internally.
fn four_hop_world() -> Vec<AppManifest> {
    vec![
        AppManifest::builder("com.hop.a")
            .activity_with_actions("Main", false, &["hop.ONE"])
            .build(),
        AppManifest::builder("com.hop.b")
            .activity_with_actions("H1", true, &["hop.ONE"])
            .activity_with_actions("Emit2", false, &["hop.TWO"])
            .build(),
        AppManifest::builder("com.hop.c")
            .activity_with_actions("H2", true, &["hop.TWO"])
            .activity_with_actions("Emit3", false, &["hop.THREE"])
            .build(),
        AppManifest::builder("com.hop.d")
            .activity_with_actions("H3", true, &["hop.THREE"])
            .activity_with_actions("Emit4", false, &["hop.FOUR"])
            .build(),
        AppManifest::builder("com.hop.e")
            .activity_with_actions("H4", true, &["hop.FOUR"])
            .build(),
    ]
}

fn world_context() -> LintContext {
    LintContext::new(
        four_hop_world()
            .iter()
            .map(AppFacts::from_manifest)
            .collect(),
    )
}

#[test]
fn fixpoint_reaches_the_four_hop_target_with_a_full_witness() {
    let ctx = world_context();
    let absint = ctx.absint();

    assert_eq!(absint.max_chain_depth(0), 4);
    let reach = absint.reachable_from(0);
    assert_eq!(
        reach.iter().map(|r| r.hops).collect::<Vec<_>>(),
        vec![1, 2, 3, 4],
        "each relay app is reached exactly one hop deeper"
    );
    let deepest = reach.last().unwrap();
    assert_eq!(deepest.hops, 4);
    assert_eq!(ctx.apps()[deepest.target].package, "com.hop.e");
    assert_eq!(
        absint.describe_path(0, deepest.target).as_deref(),
        Some(WITNESS)
    );
}

#[test]
fn two_hop_truncation_provably_misses_the_deep_target() {
    let ctx = world_context();
    let apps: Vec<AppFacts> = four_hop_world()
        .iter()
        .map(AppFacts::from_manifest)
        .collect();
    let pricer = Pricer::new(DevicePowerModel::nexus4().coefficients());

    // The same solver, capped at the legacy pass's depth.
    let truncated = AbsintSolution::solve(&apps, ctx.handler_index(), &pricer, 2);
    let reach = truncated.reachable_from(0);
    assert_eq!(
        reach.iter().map(|r| r.hops).max(),
        Some(2),
        "a depth-2 analysis stops at com.hop.c"
    );
    assert!(
        reach.iter().all(|r| apps[r.target].package != "com.hop.e"),
        "the deep target is invisible at depth 2"
    );

    // The legacy two-hop enumeration does mention com.hop.e — but only in
    // emission-blind pairs where somebody along the way cannot actually
    // emit the action attributed to them (the origin can only emit
    // hop.ONE; com.hop.b can only emit hop.ONE and hop.TWO). Every legacy
    // chain ending at the deep target breaks on one of its two hops, so
    // the old pass could never truthfully report the relay.
    let vocabulary = |index: usize| -> Vec<&str> {
        apps[index]
            .manifest
            .components
            .iter()
            .flat_map(|decl| decl.intent_actions.iter().map(String::as_str))
            .collect()
    };
    let legacy = ctx.chains_from(0, usize::MAX);
    let ending_deep: Vec<_> = legacy
        .iter()
        .filter(|chain| apps[chain.second.app].package == "com.hop.e")
        .collect();
    assert!(!ending_deep.is_empty(), "the blind pass emits bogus pairs");
    for chain in ending_deep {
        let first_feasible = vocabulary(0).contains(&chain.first_action.as_str());
        let second_feasible = vocabulary(chain.first.app).contains(&chain.second_action.as_str());
        assert!(
            !(first_feasible && second_feasible),
            "legacy chain {} is emission-feasible after all",
            ctx.describe_chain(0, chain)
        );
    }
}

#[test]
fn chain_rule_reports_the_four_hop_path_as_evidence() {
    let report = Linter::new().lint_manifests(&four_hop_world());
    let diag = report
        .diagnostics
        .iter()
        .find(|d| d.rule == RuleId::AttackChain && d.package == "com.hop.a")
        .expect("EA0009 must fire for the chain origin");

    assert!(
        diag.message.contains("4 hops deep"),
        "message must quantify the depth: {}",
        diag.message
    );
    assert!(
        diag.evidence.iter().any(|line| line == WITNESS),
        "evidence must carry the full witness path: {:?}",
        diag.evidence
    );
    assert!(diag.predicted_joules > 0.0);
}
