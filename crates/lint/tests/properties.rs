//! The soundness property, under fire: for *random* app sets driven by
//! *random* action sequences, the static lint report taken before the run
//! must predict every `(driving uid, AttackKind)` pair the dynamic
//! monitor records — and every priced diagnostic's `predicted_joules`
//! bound must dominate the collateral energy the profiler attributes per
//! victim. This is the same two-part contract the scenario suite checks,
//! but over the whole configuration space proptest can reach.

use ea_core::{Profiler, ScreenPolicy};
use ea_framework::{
    AndroidSystem, AppBehavior, AppManifest, ChangeSource, Intent, Permission, WakelockKind,
    WakelockPolicy,
};
use ea_lint::soundness::{check_quantitative, check_superset, observed_attacks};
use ea_lint::Linter;
use ea_sim::SimDuration;
use proptest::prelude::*;

/// Implicit actions the generator may declare and fire.
const ACTIONS: [&str; 3] = [
    "android.intent.action.SEND",
    "android.intent.action.VIEW",
    "android.media.action.VIDEO_CAPTURE",
];

/// Generator-side description of one app.
#[derive(Debug, Clone)]
struct AppSpec {
    export_main: bool,
    transparent_ghost: bool,
    service: Option<bool>, // Some(exported)
    implicit_action: Option<usize>,
    wake_lock: bool,
    write_settings: bool,
    policy: WakelockPolicy,
}

fn app_spec() -> impl Strategy<Value = AppSpec> {
    (
        (
            any::<bool>(),
            any::<bool>(),
            proptest::option::of(any::<bool>()),
            proptest::option::of(0usize..ACTIONS.len()),
        ),
        (any::<bool>(), any::<bool>(), 0u8..4),
    )
        .prop_map(
            |(
                (export_main, transparent_ghost, service, implicit_action),
                (wake_lock, write_settings, policy),
            )| {
                AppSpec {
                    export_main,
                    transparent_ghost,
                    service,
                    implicit_action,
                    wake_lock,
                    write_settings,
                    policy: match policy {
                        0 => WakelockPolicy::OnPause,
                        1 => WakelockPolicy::OnStop,
                        2 => WakelockPolicy::OnDestroy,
                        _ => WakelockPolicy::Never,
                    },
                }
            },
        )
}

fn manifest_of(index: usize, spec: &AppSpec) -> AppManifest {
    let mut builder = AppManifest::builder(format!("com.prop.app{index}"));
    builder = match spec.implicit_action {
        Some(action) => builder.activity_with_actions("Main", spec.export_main, &[ACTIONS[action]]),
        None => builder.activity("Main", spec.export_main),
    };
    if spec.transparent_ghost {
        builder = builder.transparent_activity("Ghost", false);
    }
    if let Some(exported) = spec.service {
        builder = builder.service("Worker", exported);
    }
    if spec.wake_lock {
        builder = builder.permission(Permission::WakeLock);
    }
    if spec.write_settings {
        builder = builder.permission(Permission::WriteSettings);
    }
    builder.build()
}

/// One random action against the system. App indices are taken modulo the
/// installed count, so every generated op is applicable.
#[derive(Debug, Clone)]
enum Op {
    Launch(usize),
    StartActivity(usize, usize),
    StartImplicit(usize, usize),
    MoveToFront(usize, usize),
    OpenHome(usize),
    BindService(usize, usize),
    StartService(usize, usize),
    AcquireLock(usize, bool),
    Brightness(usize, u8),
    BrightnessMode(usize, bool),
    PressBack,
    Advance(u64),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..8).prop_map(Op::Launch),
        (0usize..8, 0usize..8).prop_map(|(a, b)| Op::StartActivity(a, b)),
        (0usize..8, 0usize..ACTIONS.len()).prop_map(|(a, n)| Op::StartImplicit(a, n)),
        (0usize..8, 0usize..8).prop_map(|(a, b)| Op::MoveToFront(a, b)),
        (0usize..8).prop_map(Op::OpenHome),
        (0usize..8, 0usize..8).prop_map(|(a, b)| Op::BindService(a, b)),
        (0usize..8, 0usize..8).prop_map(|(a, b)| Op::StartService(a, b)),
        (0usize..8, any::<bool>()).prop_map(|(a, bright)| Op::AcquireLock(a, bright)),
        (0usize..8, any::<u8>()).prop_map(|(a, v)| Op::Brightness(a, v)),
        (0usize..8, any::<bool>()).prop_map(|(a, manual)| Op::BrightnessMode(a, manual)),
        Just(Op::PressBack),
        (1u64..40).prop_map(Op::Advance),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn static_prediction_is_superset_of_dynamic_observation(
        specs in proptest::collection::vec(app_spec(), 1..5),
        ops in proptest::collection::vec(op(), 0..48),
    ) {
        let mut android = AndroidSystem::new();
        let uids: Vec<_> = specs
            .iter()
            .enumerate()
            .map(|(index, spec)| {
                android.install_with_behavior(
                    manifest_of(index, spec),
                    AppBehavior::demo().with_wakelock_policy(spec.policy),
                )
            })
            .collect();
        let packages: Vec<String> = uids
            .iter()
            .map(|&uid| android.app(uid).unwrap().manifest.package.clone())
            .collect();

        // Static pass first: the report must already cover whatever the
        // random run manages to do.
        let report = Linter::new().lint_system(&android);

        let mut profiler = Profiler::eandroid(ScreenPolicy::SeparateEntity);
        let n = uids.len();
        for op in &ops {
            // Errors (missing permission, non-exported target, unknown
            // component) are expected outcomes of random driving: the
            // framework refusing an action is itself a soundness-relevant
            // fact, because refused actions must not open attack periods.
            let _ = match *op {
                Op::Launch(a) => android.user_launch(&packages[a % n]).map(|_| ()),
                Op::StartActivity(a, b) => android
                    .start_activity(
                        uids[a % n],
                        Intent::explicit(packages[b % n].clone(), "Main"),
                    )
                    .map(|_| ()),
                Op::StartImplicit(a, action) => android
                    .start_activity(uids[a % n], Intent::implicit(ACTIONS[action]))
                    .map(|_| ()),
                Op::MoveToFront(a, b) => {
                    android.move_task_to_front(ChangeSource::App(uids[a % n]), uids[b % n])
                }
                Op::OpenHome(a) => {
                    android.app_open_home(uids[a % n]);
                    Ok(())
                }
                Op::BindService(a, b) => android
                    .bind_service(
                        uids[a % n],
                        Intent::explicit(packages[b % n].clone(), "Worker"),
                    )
                    .map(|_| ()),
                Op::StartService(a, b) => android
                    .start_service(
                        uids[a % n],
                        Intent::explicit(packages[b % n].clone(), "Worker"),
                    )
                    .map(|_| ()),
                Op::AcquireLock(a, bright) => {
                    let kind = if bright {
                        WakelockKind::ScreenBright
                    } else {
                        WakelockKind::Partial
                    };
                    android.acquire_wakelock(uids[a % n], kind).map(|_| ())
                }
                Op::Brightness(a, value) => {
                    android.set_brightness(ChangeSource::App(uids[a % n]), value)
                }
                Op::BrightnessMode(a, manual) => {
                    android.set_brightness_mode(ChangeSource::App(uids[a % n]), manual)
                }
                Op::PressBack => {
                    android.user_press_back();
                    Ok(())
                }
                Op::Advance(secs) => {
                    profiler.run(&mut android, SimDuration::from_secs(secs));
                    Ok(())
                }
            };
        }
        profiler.run(&mut android, SimDuration::from_secs(5));

        let monitor = profiler.monitor().expect("eandroid profiler has a monitor");

        let observed = observed_attacks(monitor.attack_history());
        let violations = check_superset(&report, &observed);
        prop_assert!(
            violations.is_empty(),
            "static analysis missed dynamic attacks: {:?}",
            violations
        );

        // Quantitative half: every per-victim collateral attribution must
        // sit under every priced diagnostic of its driver.
        let graph = monitor.graph();
        let mut measured: Vec<(u32, f64)> = Vec::new();
        for host in graph.hosts().collect::<Vec<_>>() {
            for (_victim, energy) in graph.collateral_of(host) {
                measured.push((host.as_raw(), energy.as_joules()));
            }
        }
        let undershoots = check_quantitative(&report, &measured);
        prop_assert!(
            undershoots.is_empty(),
            "static bounds undershot measured collateral: {:?}",
            undershoots
        );
    }
}
