//! The one snapshot-rendering path shared by every live surface: the
//! `--watch` stderr ticker, the `--heartbeat` JSONL stream, and the
//! `ea-serve` service's sampler all push the *same*
//! [`MetricsSnapshot`] through a [`SnapshotEmitter`], so a number shown
//! on one surface can never disagree with the same number on another.

use std::io::Write;
use std::sync::Mutex;

use crate::MetricsSnapshot;

/// Renders observatory snapshots to the enabled live surfaces.
///
/// `Sync` by construction (the heartbeat writer sits behind a mutex), so
/// a sampler thread and a final-flush caller can share one emitter.
pub struct SnapshotEmitter<'a> {
    watch: bool,
    heartbeat: Mutex<Option<&'a mut (dyn Write + Send)>>,
}

impl std::fmt::Debug for SnapshotEmitter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotEmitter")
            .field("watch", &self.watch)
            .finish_non_exhaustive()
    }
}

impl<'a> SnapshotEmitter<'a> {
    /// An emitter for the given surfaces: `watch` draws the one-line
    /// stderr ticker, `heartbeat` appends one JSONL line per snapshot.
    #[must_use]
    pub fn new(watch: bool, heartbeat: Option<&'a mut (dyn Write + Send)>) -> Self {
        SnapshotEmitter {
            watch,
            heartbeat: Mutex::new(heartbeat),
        }
    }

    /// Whether any surface is enabled (if not, sampling is pointless).
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.watch
            || self
                .heartbeat
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .is_some()
    }

    /// Renders one snapshot to every enabled surface. `last` finishes
    /// the watch ticker's line so the shell prompt lands cleanly.
    pub fn emit(&self, snapshot: &MetricsSnapshot, last: bool) {
        if self.watch {
            eprint!("\r\x1b[2K{}", snapshot.watch_line());
            if last {
                eprintln!();
            }
        }
        let mut heartbeat = self
            .heartbeat
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(out) = heartbeat.as_mut() {
            if let Err(error) = writeln!(out, "{}", snapshot.to_jsonl()) {
                eprintln!("metrics: heartbeat write failed: {error}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SNAPSHOT_SCHEMA;

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            schema: SNAPSHOT_SCHEMA.to_string(),
            seq: 1,
            elapsed_ms: 10,
            devices_total: 4,
            devices_done: 2,
            devices_failed: 0,
            devices_retried: 0,
            chaos_panics: 0,
            devices_per_sec: 1.0,
            recent_devices_per_sec: 1.0,
            worker_busy: vec![0.5],
            drain_gamma: 0.01,
            drain_p50_joules: 1.0,
            drain_p90_joules: 2.0,
            drain_p99_joules: 3.0,
        }
    }

    #[test]
    fn heartbeat_lines_are_replayable_snapshots() {
        let mut buffer: Vec<u8> = Vec::new();
        {
            let emitter = SnapshotEmitter::new(false, Some(&mut buffer));
            assert!(emitter.enabled());
            emitter.emit(&sample(), false);
            emitter.emit(&sample(), true);
        }
        let text = String::from_utf8(buffer).expect("utf8 jsonl");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let back: MetricsSnapshot = serde_json::from_str(line).expect("parses");
            assert_eq!(back.schema, SNAPSHOT_SCHEMA);
        }
    }

    #[test]
    fn disabled_emitter_reports_itself() {
        let emitter = SnapshotEmitter::new(false, None);
        assert!(!emitter.enabled());
        emitter.emit(&sample(), true); // must be a no-op, not a panic
    }
}
