//! The per-device flight recorder: a bounded ring of the most recent
//! telemetry events, kept so a crashed device can explain itself.
//!
//! Unlike `ea_telemetry::Recorder`, which keeps *everything* for export,
//! the flight recorder holds only the last `capacity` events — constant
//! memory per device regardless of how long the day ran. When a fleet
//! device panics past its retry budget, the supervisor attaches the ring
//! as a [`FlightDump`] to the `DeviceFailure`, joining the checkpoint
//! salvage: the failure entry carries both *how far* the device got and
//! *what it was doing* when it died.
//!
//! Every timestamp in the ring is simulated time, so the dump is a pure
//! function of `(config, device index, attempt)` — byte-identical at any
//! `--jobs`, like everything else in the report.

use std::collections::VecDeque;
use std::sync::Mutex;

use ea_telemetry::{SpanId, TelemetryEvent, TelemetrySink, TraceRecord};
use serde::{Deserialize, Serialize};

/// The serialized contents of a flight recorder ring.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightDump {
    /// Ring capacity the recorder ran with.
    pub capacity: usize,
    /// Events that fell off the front of the ring.
    pub dropped: u64,
    /// The retained tail of the event stream, oldest first.
    pub events: Vec<TraceRecord>,
    /// The crashed attempt's lifecycle intent-log tail, stitched in by
    /// the fleet supervisor so the flight-recorder dump and the replay
    /// input travel as one forensics bundle. Kept as opaque JSON: the
    /// intent types live above this crate (`ea_framework`), and the
    /// recorder itself never writes this field.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub intent_tail: Option<serde_json::Value>,
}

impl FlightDump {
    /// Whether the ring retained no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }
}

#[derive(Debug, Default)]
struct FlightState {
    events: VecDeque<TraceRecord>,
    dropped: u64,
}

/// A bounded telemetry sink retaining the most recent events.
///
/// # Example
///
/// ```
/// use ea_metrics::FlightRecorder;
/// use ea_telemetry::{TelemetryEvent, TelemetrySink};
///
/// let recorder = FlightRecorder::new(2);
/// for t in 0..5u64 {
///     recorder.record_event(t, TelemetryEvent::Attribution { uid: 1, joules: 0.1 });
/// }
/// let dump = recorder.dump();
/// assert_eq!(dump.len(), 2);
/// assert_eq!(dump.dropped, 3);
/// assert_eq!(dump.events[0].t_us, 3);
/// ```
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    state: Mutex<FlightState>,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` events (at least one).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            state: Mutex::new(FlightState::default()),
        }
    }

    /// The ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Clears the ring — the supervisor calls this between retry
    /// attempts so a dump never mixes events from two attempts.
    pub fn reset(&self) {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state.events.clear();
        state.dropped = 0;
    }

    /// Snapshots the ring into a serializable dump.
    #[must_use]
    pub fn dump(&self) -> FlightDump {
        let state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        FlightDump {
            capacity: self.capacity,
            dropped: state.dropped,
            events: state.events.iter().cloned().collect(),
            intent_tail: None,
        }
    }
}

impl TelemetrySink for FlightRecorder {
    fn record_event(&self, t_us: u64, event: TelemetryEvent) {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if state.events.len() == self.capacity {
            state.events.pop_front();
            state.dropped += 1;
        }
        state.events.push_back(TraceRecord { t_us, event });
    }

    // The flight recorder captures the event stream only; metric and span
    // traffic passes through untimed so attaching one costs the emitting
    // side nothing beyond the event pushes.
    fn counter_add(&self, _name: &str, _delta: u64) {}

    fn gauge_set(&self, _name: &str, _value: f64) {}

    fn observe(&self, _name: &str, _value: f64) {}

    fn span_enter(&self, _name: &str) -> SpanId {
        SpanId::NONE
    }

    fn span_exit(&self, _id: SpanId) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(t_us: u64) -> TelemetryEvent {
        TelemetryEvent::BatteryDrain {
            joules: t_us as f64,
            remaining_percent: 99.0,
        }
    }

    #[test]
    fn ring_keeps_the_tail() {
        let recorder = FlightRecorder::new(3);
        for t in 0..10u64 {
            recorder.record_event(t, event(t));
        }
        let dump = recorder.dump();
        assert_eq!(dump.dropped, 7);
        assert_eq!(
            dump.events.iter().map(|r| r.t_us).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
    }

    #[test]
    fn reset_clears_between_attempts() {
        let recorder = FlightRecorder::new(4);
        recorder.record_event(1, event(1));
        recorder.reset();
        assert!(recorder.dump().is_empty());
        recorder.record_event(2, event(2));
        assert_eq!(recorder.dump().len(), 1);
    }

    #[test]
    fn zero_capacity_is_bumped_to_one() {
        let recorder = FlightRecorder::new(0);
        recorder.record_event(1, event(1));
        recorder.record_event(2, event(2));
        assert_eq!(recorder.capacity(), 1);
        assert_eq!(recorder.dump().len(), 1);
    }

    #[test]
    fn dump_round_trips_through_json() {
        let recorder = FlightRecorder::new(2);
        recorder.record_event(5, event(5));
        let dump = recorder.dump();
        let text = serde_json::to_string(&dump).expect("serializes");
        let back: FlightDump = serde_json::from_str(&text).expect("parses");
        assert_eq!(dump, back);
    }
}
