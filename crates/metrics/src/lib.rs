//! # ea-metrics — mergeable streaming aggregation and fleet observability
//!
//! The observability layer between `ea-telemetry` (raw event transport)
//! and `ea-fleet` (population-scale simulation). Four pieces:
//!
//! * [`QuantileSketch`] — a fixed-bin DDSketch-style quantile sketch with
//!   data-independent bin boundaries and an associative, commutative
//!   merge. Per-worker sketches fold into fleet-wide percentiles that are
//!   byte-identical at any `--jobs` and within a configured relative
//!   error `γ` of the exact sorted percentiles.
//! * [`ProfilerMetrics`] — sim-time windowed counters/gauges/histograms
//!   accrued on the profiler hot path: the per-step touch is a compare
//!   and a few adds; window bookkeeping amortizes onto rollovers.
//! * [`FlightRecorder`] — a bounded ring of recent telemetry events per
//!   device, attached to `DeviceFailure` entries so a crashed device
//!   carries its own last moments alongside the checkpoint salvage.
//! * [`FleetObservatory`] — live run-wide health (throughput, worker
//!   utilization, fault counts, drain quantiles) sampled into
//!   [`MetricsSnapshot`]s: rendered by `eandroid fleet --watch`, appended
//!   as JSONL heartbeats, and exposed Prometheus-style by
//!   `eandroid metrics`.
//!
//! The dividing rule, inherited from the fleet's determinism contract:
//! anything that goes *into a report* is simulated-time data and
//! byte-reproducible; anything wall-clock lives here, in snapshots that
//! exist to watch a run, not to compare runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Fallible paths must return errors, not panic: unwrap/expect are
// banned outside tests (DESIGN.md Â§11). Carve-outs need an explicit
// `#[allow]` with a proof of infallibility.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod emit;
mod flight;
mod observatory;
mod sketch;
mod snapshot;
mod window;

pub use emit::SnapshotEmitter;
pub use flight::{FlightDump, FlightRecorder};
pub use observatory::FleetObservatory;
pub use sketch::QuantileSketch;
pub use snapshot::{MetricsSnapshot, SNAPSHOT_SCHEMA};
pub use window::{MetricsWindow, ProfilerMetrics, WindowSpec};
