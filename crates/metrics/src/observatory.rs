//! The fleet health observatory: shared run-wide state the worker pool
//! updates as devices finish, sampled into [`MetricsSnapshot`]s by
//! whoever is watching (the `--watch` renderer, the heartbeat writer, or
//! the `eandroid metrics` exposition).
//!
//! Everything on the worker path is an atomic add or a short mutex-held
//! sketch insert — one per *device*, not per step, so the observatory is
//! invisible next to the seconds each device simulation takes. The
//! observatory never feeds the `FleetReport`: wall-clock facts stay out
//! of the deterministic report by the same rule as `FleetRunStats`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::{MetricsSnapshot, QuantileSketch, SNAPSHOT_SCHEMA};

/// State for the recent-rate estimate: the previous sample's time and
/// completion count.
#[derive(Debug)]
struct LastSample {
    at: Instant,
    done: u64,
}

/// Run-wide live state of one fleet run.
#[derive(Debug)]
pub struct FleetObservatory {
    started: Instant,
    devices_total: u64,
    done: AtomicU64,
    failed: AtomicU64,
    retried: AtomicU64,
    chaos_panics: AtomicU64,
    /// Per-worker busy time, microseconds of wall clock.
    busy_us: Vec<AtomicU64>,
    /// Per-device drain distribution across completed devices.
    drains: Mutex<QuantileSketch>,
    seq: AtomicU64,
    last: Mutex<LastSample>,
}

impl FleetObservatory {
    /// An observatory for a run of `devices_total` devices on `workers`
    /// worker threads; the clock starts now.
    #[must_use]
    pub fn new(devices_total: usize, workers: usize) -> Self {
        let started = Instant::now();
        FleetObservatory {
            started,
            devices_total: devices_total as u64,
            done: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            chaos_panics: AtomicU64::new(0),
            busy_us: (0..workers.max(1)).map(|_| AtomicU64::new(0)).collect(),
            drains: Mutex::new(QuantileSketch::default()),
            seq: AtomicU64::new(0),
            last: Mutex::new(LastSample {
                at: started,
                done: 0,
            }),
        }
    }

    /// Records one completed device and its day's battery drain.
    pub fn device_completed(&self, drained_joules: f64) {
        self.drains
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .record(drained_joules);
        self.done.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one device abandoned past its retry budget.
    pub fn device_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a device entering its first retry.
    pub fn device_retried(&self) {
        self.retried.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one chaos-injected panic the supervisor caught.
    pub fn chaos_panic(&self) {
        self.chaos_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `busy` wall-clock microseconds to `worker`'s busy total.
    pub fn worker_busy_add(&self, worker: usize, busy_us: u64) {
        if let Some(counter) = self.busy_us.get(worker) {
            counter.fetch_add(busy_us, Ordering::Relaxed);
        }
    }

    /// Devices finished so far (completed + abandoned).
    #[must_use]
    pub fn finished(&self) -> u64 {
        self.done.load(Ordering::Relaxed) + self.failed.load(Ordering::Relaxed)
    }

    /// Samples the current state into a snapshot and advances the
    /// recent-rate baseline.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let now = Instant::now();
        let elapsed = now.duration_since(self.started);
        let elapsed_secs = elapsed.as_secs_f64();
        let done = self.done.load(Ordering::Relaxed);
        let (p50, p90, p99, gamma) = {
            let drains = self
                .drains
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            (
                drains.quantile(0.50),
                drains.quantile(0.90),
                drains.quantile(0.99),
                drains.gamma(),
            )
        };
        let recent = {
            let mut last = self
                .last
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let span = now.duration_since(last.at).as_secs_f64();
            let delta = done.saturating_sub(last.done);
            last.at = now;
            last.done = done;
            if span > 0.0 {
                delta as f64 / span
            } else {
                0.0
            }
        };
        let worker_busy = self
            .busy_us
            .iter()
            .map(|busy| {
                if elapsed_secs > 0.0 {
                    (busy.load(Ordering::Relaxed) as f64 / 1e6 / elapsed_secs).min(1.0)
                } else {
                    0.0
                }
            })
            .collect();
        MetricsSnapshot {
            schema: SNAPSHOT_SCHEMA.to_string(),
            seq: self.seq.fetch_add(1, Ordering::Relaxed) + 1,
            elapsed_ms: elapsed.as_millis() as u64,
            devices_total: self.devices_total,
            devices_done: done,
            devices_failed: self.failed.load(Ordering::Relaxed),
            devices_retried: self.retried.load(Ordering::Relaxed),
            chaos_panics: self.chaos_panics.load(Ordering::Relaxed),
            devices_per_sec: if elapsed_secs > 0.0 {
                done as f64 / elapsed_secs
            } else {
                0.0
            },
            recent_devices_per_sec: recent,
            worker_busy,
            drain_gamma: gamma,
            drain_p50_joules: p50,
            drain_p90_joules: p90,
            drain_p99_joules: p99,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_progress() {
        let observatory = FleetObservatory::new(8, 2);
        observatory.device_completed(100.0);
        observatory.device_completed(200.0);
        observatory.device_failed();
        observatory.device_retried();
        observatory.chaos_panic();
        observatory.worker_busy_add(0, 500_000);
        let snapshot = observatory.snapshot();
        assert_eq!(snapshot.schema, SNAPSHOT_SCHEMA);
        assert_eq!(snapshot.seq, 1);
        assert_eq!(snapshot.devices_total, 8);
        assert_eq!(snapshot.devices_done, 2);
        assert_eq!(snapshot.devices_failed, 1);
        assert_eq!(snapshot.devices_retried, 1);
        assert_eq!(snapshot.chaos_panics, 1);
        assert_eq!(snapshot.worker_busy.len(), 2);
        assert!(snapshot.drain_p50_joules > 0.0);
        assert_eq!(observatory.finished(), 3);
    }

    #[test]
    fn sequence_numbers_are_monotone() {
        let observatory = FleetObservatory::new(1, 1);
        assert_eq!(observatory.snapshot().seq, 1);
        assert_eq!(observatory.snapshot().seq, 2);
        assert_eq!(observatory.snapshot().seq, 3);
    }

    #[test]
    fn out_of_range_worker_is_ignored() {
        let observatory = FleetObservatory::new(1, 1);
        observatory.worker_busy_add(99, 1_000);
        assert_eq!(observatory.snapshot().worker_busy, vec![0.0]);
    }
}
