//! A fixed-bin mergeable quantile sketch.
//!
//! The design follows DDSketch: values land in logarithmic bins whose
//! boundaries depend only on the configured relative accuracy `γ`, never
//! on the data. Bin `k` covers `(base^(k-1), base^k]` with
//! `base = (1+γ)/(1-γ)`, so estimating every value in the bin by the
//! bin's midpoint-in-log-space is off by at most `γ` *relative* error.
//!
//! Because the boundaries are data-independent and the per-bin counts are
//! plain `u64`s, merging two sketches is per-key integer addition —
//! associative and commutative. A fleet run can therefore keep one sketch
//! per worker shard and fold them in *any* order: the merged bins, and
//! every quantile read off them, are byte-identical at any `--jobs`.

use std::collections::BTreeMap;

/// A mergeable quantile sketch with bounded relative error.
///
/// # Example
///
/// ```
/// use ea_metrics::QuantileSketch;
///
/// let mut sketch = QuantileSketch::default();
/// for value in 1..=1_000 {
///     sketch.record(f64::from(value));
/// }
/// let p50 = sketch.quantile(0.50);
/// assert!((p50 - 500.0).abs() / 500.0 <= sketch.gamma());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    gamma: f64,
    /// Cached `1 / ln(base)`; a pure function of `gamma`, precomputed so
    /// recording costs one `ln` and one multiply.
    inv_log_base: f64,
    /// Count per logarithmic bin key.
    bins: BTreeMap<i32, u64>,
    /// Values `<= 0` (the drain distributions this sketch serves are
    /// non-negative; zero is common for an idle window).
    zero_count: u64,
    count: u64,
    min: f64,
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new(QuantileSketch::DEFAULT_GAMMA)
    }
}

impl QuantileSketch {
    /// The workspace-wide default relative accuracy: 1 %.
    pub const DEFAULT_GAMMA: f64 = 0.01;

    /// An empty sketch with relative accuracy `gamma` (clamped to a sane
    /// open interval; `gamma` must satisfy `0 < gamma < 1`).
    ///
    /// # Panics
    ///
    /// Panics when `gamma` is not in `(0, 1)`.
    #[must_use]
    pub fn new(gamma: f64) -> Self {
        assert!(
            gamma > 0.0 && gamma < 1.0,
            "relative accuracy must be in (0, 1), got {gamma}"
        );
        let base = (1.0 + gamma) / (1.0 - gamma);
        QuantileSketch {
            gamma,
            inv_log_base: 1.0 / base.ln(),
            bins: BTreeMap::new(),
            zero_count: 0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The configured relative accuracy.
    #[must_use]
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Observations recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether the sketch holds no observations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded value (exact), `0.0` when empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded value (exact), `0.0` when empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Occupied logarithmic bins (the zero bucket not included).
    #[must_use]
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    /// The bin key of a positive value: `ceil(log_base(value))`.
    fn key_of(&self, value: f64) -> i32 {
        (value.ln() * self.inv_log_base).ceil() as i32
    }

    /// The estimate every value in bin `key` maps back to: the bin's
    /// midpoint in log space, `base^key * 2 / (1 + base)`, within `gamma`
    /// relative error of anything the bin covers.
    fn value_of(&self, key: i32) -> f64 {
        let base = (1.0 + self.gamma) / (1.0 - self.gamma);
        base.powi(key) * 2.0 / (1.0 + base)
    }

    /// Records one observation. Non-finite values are ignored; values
    /// `<= 0` land in the exact zero bucket.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        if value <= 0.0 {
            self.zero_count += 1;
        } else {
            *self.bins.entry(self.key_of(value)).or_insert(0) += 1;
        }
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another sketch into this one: per-bin `u64` addition, so
    /// the operation is associative and commutative and the result is
    /// independent of merge order (and therefore of `--jobs`).
    ///
    /// # Panics
    ///
    /// Panics when the accuracies differ — sketches with different bin
    /// boundaries are not mergeable, and mixing them is a logic error.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            self.gamma.to_bits() == other.gamma.to_bits(),
            "cannot merge sketches with different accuracies ({} vs {})",
            self.gamma,
            other.gamma
        );
        for (&key, &count) in &other.bins {
            *self.bins.entry(key).or_insert(0) += count;
        }
        self.zero_count += other.zero_count;
        self.count += other.count;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// The value at quantile `q` (clamped to `[0, 1]`), using the same
    /// nearest-rank convention as an exact sort: the estimate is within
    /// `gamma` *relative* error of the element an exact
    /// `sorted[ceil(q * n) - 1]` lookup would return. Returns `0.0` when
    /// empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = self.zero_count;
        if cumulative >= rank {
            return 0.0;
        }
        for (&key, &count) in &self.bins {
            cumulative += count;
            if cumulative >= rank {
                // The sketch loses ordering inside a bin but not across
                // bins, so this bin provably contains the rank-th
                // smallest observation; clamping to the exact extremes
                // can only tighten the estimate.
                return self.value_of(key).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_nearest_rank(sorted: &[f64], q: f64) -> f64 {
        let rank = (q * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    #[test]
    fn empty_sketch_reads_zero() {
        let sketch = QuantileSketch::default();
        assert!(sketch.is_empty());
        assert_eq!(sketch.quantile(0.5), 0.0);
        assert_eq!(sketch.min(), 0.0);
        assert_eq!(sketch.max(), 0.0);
    }

    #[test]
    fn quantiles_track_exact_percentiles_within_gamma() {
        let mut sketch = QuantileSketch::default();
        let values: Vec<f64> = (1..=5_000).map(|v| f64::from(v) * 0.37).collect();
        for &value in &values {
            sketch.record(value);
        }
        for q in [0.01, 0.25, 0.50, 0.90, 0.99, 1.0] {
            let exact = exact_nearest_rank(&values, q);
            let estimate = sketch.quantile(q);
            assert!(
                (estimate - exact).abs() / exact <= sketch.gamma(),
                "q={q}: estimate {estimate} vs exact {exact}"
            );
        }
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        let values: Vec<f64> = (0..1_000)
            .map(|v| (f64::from(v) * 1.37).exp().min(1e9))
            .collect();
        let mut whole = QuantileSketch::default();
        for &value in &values {
            whole.record(value);
        }
        let mut left = QuantileSketch::default();
        let mut right = QuantileSketch::default();
        for (index, &value) in values.iter().enumerate() {
            if index % 2 == 0 {
                left.record(value);
            } else {
                right.record(value);
            }
        }
        left.merge(&right);
        assert_eq!(left, whole, "sharding must not change the sketch");
    }

    #[test]
    fn zero_and_negative_values_use_the_zero_bucket() {
        let mut sketch = QuantileSketch::default();
        sketch.record(0.0);
        sketch.record(-3.0);
        sketch.record(10.0);
        assert_eq!(sketch.count(), 3);
        assert_eq!(sketch.quantile(0.1), 0.0);
        assert_eq!(sketch.min(), -3.0);
    }

    #[test]
    fn non_finite_values_are_ignored() {
        let mut sketch = QuantileSketch::default();
        sketch.record(f64::NAN);
        sketch.record(f64::INFINITY);
        assert!(sketch.is_empty());
    }

    #[test]
    #[should_panic(expected = "different accuracies")]
    fn merging_mismatched_gammas_panics() {
        let mut a = QuantileSketch::new(0.01);
        let b = QuantileSketch::new(0.02);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "relative accuracy")]
    fn gamma_out_of_range_is_rejected() {
        let _ = QuantileSketch::new(1.5);
    }
}
