//! The periodic fleet-health snapshot and its two wire formats: JSONL
//! heartbeats (machine-replayable) and Prometheus-style text exposition
//! (scrapeable).

use serde::{Deserialize, Serialize};

/// Schema tag every heartbeat line carries.
pub const SNAPSHOT_SCHEMA: &str = "ea-metrics/snapshot/v1";

/// One observatory sample: progress, throughput, worker utilization,
/// fault health, and the drain distribution so far.
///
/// Unlike the `FleetReport`, a snapshot *is* wall-clock data — it exists
/// to watch a run live, not to compare runs — so it carries elapsed time
/// and rates that differ between otherwise identical runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Schema tag ([`SNAPSHOT_SCHEMA`]).
    pub schema: String,
    /// Monotone sample number, starting at 1.
    pub seq: u64,
    /// Wall time since the run started, milliseconds.
    pub elapsed_ms: u64,
    /// Devices the run was asked to simulate.
    pub devices_total: u64,
    /// Devices completed so far.
    pub devices_done: u64,
    /// Devices abandoned past their retry budget so far.
    pub devices_failed: u64,
    /// Devices that have needed at least one retry so far.
    pub devices_retried: u64,
    /// Chaos-injected panics the supervisor has caught so far.
    pub chaos_panics: u64,
    /// All-time completion rate, devices per wall-clock second.
    pub devices_per_sec: f64,
    /// Completion rate since the previous snapshot.
    pub recent_devices_per_sec: f64,
    /// Per-worker busy ratio so far, `0.0..=1.0`.
    pub worker_busy: Vec<f64>,
    /// Relative accuracy of the drain quantiles below.
    pub drain_gamma: f64,
    /// Median per-device drain so far, joules (sketch estimate).
    pub drain_p50_joules: f64,
    /// 90th-percentile per-device drain so far, joules (sketch estimate).
    pub drain_p90_joules: f64,
    /// 99th-percentile per-device drain so far, joules (sketch estimate).
    pub drain_p99_joules: f64,
}

impl MetricsSnapshot {
    /// One JSONL heartbeat line (no trailing newline). Serialization of
    /// a plain-number struct cannot fail; if it somehow does, the line
    /// degrades to an error object instead of killing the heartbeat.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        serde_json::to_string(self)
            .unwrap_or_else(|err| format!("{{\"error\":\"snapshot failed to serialize: {err}\"}}"))
    }

    /// Prometheus-style text exposition of the snapshot.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(1_024);
        let counter = |out: &mut String, name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        };
        counter(
            &mut out,
            "eandroid_fleet_devices_done",
            "Devices that completed their simulated day.",
            self.devices_done,
        );
        counter(
            &mut out,
            "eandroid_fleet_devices_failed",
            "Devices abandoned past the retry budget.",
            self.devices_failed,
        );
        counter(
            &mut out,
            "eandroid_fleet_devices_retried",
            "Devices that needed at least one retry.",
            self.devices_retried,
        );
        counter(
            &mut out,
            "eandroid_fleet_chaos_panics",
            "Chaos-injected panics caught by the supervisor.",
            self.chaos_panics,
        );
        out.push_str(&format!(
            "# HELP eandroid_fleet_devices_total Devices requested.\n\
             # TYPE eandroid_fleet_devices_total gauge\n\
             eandroid_fleet_devices_total {}\n",
            self.devices_total
        ));
        out.push_str(&format!(
            "# HELP eandroid_fleet_devices_per_sec All-time completion rate.\n\
             # TYPE eandroid_fleet_devices_per_sec gauge\n\
             eandroid_fleet_devices_per_sec {}\n",
            self.devices_per_sec
        ));
        out.push_str(
            "# HELP eandroid_fleet_drain_joules Per-device battery drain (sketch quantiles).\n\
             # TYPE eandroid_fleet_drain_joules summary\n",
        );
        for (quantile, value) in [
            ("0.5", self.drain_p50_joules),
            ("0.9", self.drain_p90_joules),
            ("0.99", self.drain_p99_joules),
        ] {
            out.push_str(&format!(
                "eandroid_fleet_drain_joules{{quantile=\"{quantile}\"}} {value}\n"
            ));
        }
        out.push_str(
            "# HELP eandroid_fleet_worker_busy_ratio Per-worker busy ratio.\n\
             # TYPE eandroid_fleet_worker_busy_ratio gauge\n",
        );
        for (worker, busy) in self.worker_busy.iter().enumerate() {
            out.push_str(&format!(
                "eandroid_fleet_worker_busy_ratio{{worker=\"{worker}\"}} {busy}\n"
            ));
        }
        out
    }

    /// One-line live rendering for `fleet --watch`.
    #[must_use]
    pub fn watch_line(&self) -> String {
        let busy_pct = if self.worker_busy.is_empty() {
            0.0
        } else {
            100.0 * self.worker_busy.iter().sum::<f64>() / self.worker_busy.len() as f64
        };
        format!(
            "[{:>6.1}s] {:>5}/{} devices ({} failed) | {:>6.1} dev/s (recent {:>6.1}) | \
             workers {:>5.1}% busy | drain p50/p90/p99 {:.1}/{:.1}/{:.1} J",
            self.elapsed_ms as f64 / 1_000.0,
            self.devices_done,
            self.devices_total,
            self.devices_failed,
            self.devices_per_sec,
            self.recent_devices_per_sec,
            busy_pct,
            self.drain_p50_joules,
            self.drain_p90_joules,
            self.drain_p99_joules,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            schema: SNAPSHOT_SCHEMA.to_string(),
            seq: 3,
            elapsed_ms: 1_500,
            devices_total: 64,
            devices_done: 40,
            devices_failed: 2,
            devices_retried: 5,
            chaos_panics: 7,
            devices_per_sec: 26.7,
            recent_devices_per_sec: 31.0,
            worker_busy: vec![0.9, 0.8],
            drain_gamma: 0.01,
            drain_p50_joules: 120.0,
            drain_p90_joules: 180.0,
            drain_p99_joules: 220.0,
        }
    }

    #[test]
    fn heartbeat_round_trips() {
        let snapshot = sample();
        let line = snapshot.to_jsonl();
        let back: MetricsSnapshot = serde_json::from_str(&line).expect("parses");
        assert_eq!(snapshot, back);
        assert!(!line.contains('\n'));
    }

    #[test]
    fn exposition_has_typed_families_and_quantiles() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE eandroid_fleet_devices_done counter"));
        assert!(text.contains("eandroid_fleet_devices_done 40"));
        assert!(text.contains("# TYPE eandroid_fleet_drain_joules summary"));
        assert!(text.contains("eandroid_fleet_drain_joules{quantile=\"0.99\"} 220"));
        assert!(text.contains("eandroid_fleet_worker_busy_ratio{worker=\"1\"} 0.8"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|line| !line.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().expect("value field");
            assert!(value.parse::<f64>().is_ok(), "bad exposition line: {line}");
        }
    }

    #[test]
    fn watch_line_is_single_line_and_mentions_progress() {
        let line = sample().watch_line();
        assert!(!line.contains('\n'));
        assert!(line.contains("40/64"));
    }
}
