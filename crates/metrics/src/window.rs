//! Sim-time windowed metrics, accrued incrementally on the profiler hot
//! path.
//!
//! [`ProfilerMetrics`] is deliberately *not* a [`ea_telemetry::TelemetrySink`]:
//! the sink is a shared `dyn` object behind a virtual call, far too heavy
//! for a per-step touch (the `hotloop` suite puts the traced path at
//! several multiples of the bare step). This type is a concrete field the
//! profiler owns, and its [`on_step`](ProfilerMetrics::on_step) is a
//! branch plus a handful of adds — the windowed counters, gauge, and the
//! per-window drain histogram all materialize lazily on window rollover,
//! so metrics-on stays at the noise floor of the step benchmark.

use std::collections::VecDeque;

use crate::QuantileSketch;

/// Shape of the window ring: window width in simulated microseconds and
/// how many closed windows to retain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// Width of one window, simulated microseconds.
    pub width_us: u64,
    /// Closed windows retained in the ring; older windows are dropped
    /// (their contribution survives in the totals and the histogram).
    pub windows: usize,
}

impl WindowSpec {
    /// The default shape: 5-second simulated windows, last 12 retained
    /// (a one-minute look-back at the default step).
    pub const DEFAULT: WindowSpec = WindowSpec {
        width_us: 5_000_000,
        windows: 12,
    };

    /// A spec with explicit width and retention.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    #[must_use]
    pub fn new(width_us: u64, windows: usize) -> Self {
        assert!(width_us > 0, "window width must be positive");
        assert!(windows > 0, "must retain at least one window");
        WindowSpec { width_us, windows }
    }
}

impl Default for WindowSpec {
    fn default() -> Self {
        WindowSpec::DEFAULT
    }
}

/// One closed sim-time window: counters plus the end-of-window gauge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsWindow {
    /// Window start, simulated microseconds (aligned to the width).
    pub start_us: u64,
    /// Profiler steps that landed in the window.
    pub steps: u64,
    /// Battery energy drained during the window, joules.
    pub drained_joules: f64,
    /// Gauge: cumulative battery drain at the window's last step, joules.
    pub drained_total_joules: f64,
}

/// Windowed per-profiler metrics: a ring of recent sim-time windows, an
/// all-time total, and a mergeable histogram of per-window drain.
#[derive(Debug, Clone)]
pub struct ProfilerMetrics {
    spec: WindowSpec,
    /// Current (open) window accumulator — the only state `on_step`
    /// touches besides the rollover compare.
    window_start_us: u64,
    window_end_us: u64,
    steps: u64,
    drained_joules: f64,
    drained_total_joules: f64,
    /// Closed windows, oldest first, capped at `spec.windows`.
    ring: VecDeque<MetricsWindow>,
    closed_steps: u64,
    closed_drained_joules: f64,
    /// Per-window drain histogram across *every* closed window, not just
    /// the retained ring.
    window_drain: QuantileSketch,
}

impl ProfilerMetrics {
    /// An empty recorder for the given window shape.
    #[must_use]
    pub fn new(spec: WindowSpec) -> Self {
        ProfilerMetrics {
            spec,
            window_start_us: 0,
            window_end_us: spec.width_us,
            steps: 0,
            drained_joules: 0.0,
            drained_total_joules: 0.0,
            ring: VecDeque::with_capacity(spec.windows + 1),
            closed_steps: 0,
            closed_drained_joules: 0.0,
            window_drain: QuantileSketch::default(),
        }
    }

    /// The window shape in use.
    #[must_use]
    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    /// Accrues one profiler step: `now_us` is simulated time, `delta_j`
    /// the battery energy drained by the step, `total_j` the cumulative
    /// drain gauge. The fast path is one compare and three adds; window
    /// bookkeeping happens only on rollover.
    #[inline]
    pub fn on_step(&mut self, now_us: u64, delta_j: f64, total_j: f64) {
        if now_us >= self.window_end_us {
            self.roll(now_us);
        }
        self.steps += 1;
        self.drained_joules += delta_j;
        self.drained_total_joules = total_j;
    }

    /// Closes the current window into the ring and opens the one
    /// containing `now_us`. Windows no step landed in are skipped, not
    /// emitted empty.
    #[cold]
    #[inline(never)]
    fn roll(&mut self, now_us: u64) {
        self.close_current();
        let start = now_us - now_us % self.spec.width_us;
        self.window_start_us = start;
        self.window_end_us = start + self.spec.width_us;
    }

    fn close_current(&mut self) {
        if self.steps == 0 {
            return;
        }
        self.ring.push_back(MetricsWindow {
            start_us: self.window_start_us,
            steps: self.steps,
            drained_joules: self.drained_joules,
            drained_total_joules: self.drained_total_joules,
        });
        if self.ring.len() > self.spec.windows {
            self.ring.pop_front();
        }
        self.closed_steps += self.steps;
        self.closed_drained_joules += self.drained_joules;
        self.window_drain.record(self.drained_joules);
        self.steps = 0;
        self.drained_joules = 0.0;
    }

    /// Closes the partial window in progress so the ring and histogram
    /// reflect every step seen; call once the run is over.
    pub fn finish(&mut self) {
        self.close_current();
    }

    /// The retained closed windows, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = &MetricsWindow> {
        self.ring.iter()
    }

    /// Steps accrued over the whole run (open window included).
    #[must_use]
    pub fn total_steps(&self) -> u64 {
        self.closed_steps + self.steps
    }

    /// Battery energy drained over the whole run, joules (open window
    /// included).
    #[must_use]
    pub fn total_drained_joules(&self) -> f64 {
        self.closed_drained_joules + self.drained_joules
    }

    /// The per-window drain histogram (closed windows only).
    #[must_use]
    pub fn window_drain(&self) -> &QuantileSketch {
        &self.window_drain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_accrue_into_aligned_windows() {
        let mut metrics = ProfilerMetrics::new(WindowSpec::new(1_000, 4));
        for step in 0..10u64 {
            // 4 steps per 1 ms window at a 250 µs step.
            metrics.on_step(step * 250, 1.0, (step + 1) as f64);
        }
        metrics.finish();
        let windows: Vec<_> = metrics.windows().copied().collect();
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0].start_us, 0);
        assert_eq!(windows[0].steps, 4);
        assert_eq!(windows[1].start_us, 1_000);
        assert_eq!(windows[2].start_us, 2_000);
        assert_eq!(windows[2].steps, 2);
        assert_eq!(metrics.total_steps(), 10);
        assert!((metrics.total_drained_joules() - 10.0).abs() < 1e-12);
        assert!((windows[2].drained_total_joules - 10.0).abs() < 1e-12);
    }

    #[test]
    fn ring_drops_oldest_but_totals_keep_everything() {
        let mut metrics = ProfilerMetrics::new(WindowSpec::new(100, 2));
        for step in 0..50u64 {
            metrics.on_step(step * 100, 2.0, 0.0);
        }
        metrics.finish();
        assert_eq!(metrics.windows().count(), 2);
        assert_eq!(metrics.total_steps(), 50);
        assert!((metrics.total_drained_joules() - 100.0).abs() < 1e-9);
        assert_eq!(metrics.window_drain().count(), 50);
    }

    #[test]
    fn idle_gaps_skip_windows_instead_of_emitting_empties() {
        let mut metrics = ProfilerMetrics::new(WindowSpec::new(1_000, 8));
        metrics.on_step(0, 1.0, 1.0);
        metrics.on_step(10_000, 1.0, 2.0);
        metrics.finish();
        let windows: Vec<_> = metrics.windows().copied().collect();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].start_us, 0);
        assert_eq!(windows[1].start_us, 10_000);
    }

    #[test]
    #[should_panic(expected = "window width")]
    fn zero_width_is_rejected() {
        let _ = WindowSpec::new(0, 4);
    }
}
