//! Property tests for the quantile sketch: the merge algebra the fleet's
//! `--jobs` independence rests on, and the rank-error bound against an
//! exact sort.

use ea_metrics::QuantileSketch;
use proptest::prelude::*;

fn sketch_of(values: &[f64]) -> QuantileSketch {
    let mut sketch = QuantileSketch::default();
    for &value in values {
        sketch.record(value);
    }
    sketch
}

/// Positive, well-spread drain-like values (joules).
fn drains() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.001f64..1e6, 1..200)
}

/// The exact nearest-rank percentile the sketch promises to track.
fn exact_nearest_rank(sorted: &[f64], q: f64) -> f64 {
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

proptest! {
    /// (a ∪ b) ∪ c == a ∪ (b ∪ c): merge is associative.
    #[test]
    fn merge_is_associative(a in drains(), b in drains(), c in drains()) {
        let (sa, sb, sc) = (sketch_of(&a), sketch_of(&b), sketch_of(&c));

        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);

        prop_assert_eq!(left, right);
    }

    /// a ∪ b == b ∪ a: merge is commutative.
    #[test]
    fn merge_is_commutative(a in drains(), b in drains()) {
        let mut ab = sketch_of(&a);
        ab.merge(&sketch_of(&b));
        let mut ba = sketch_of(&b);
        ba.merge(&sketch_of(&a));
        prop_assert_eq!(ab, ba);
    }

    /// Any sharding of the observations merges back to the sketch built
    /// from the whole stream — the `--jobs`-independence property.
    #[test]
    fn shard_order_never_changes_the_merged_sketch(
        values in drains(),
        shards in 1usize..8,
        rotate in 0usize..8,
    ) {
        let whole = sketch_of(&values);

        // Round-robin shard assignment, then merge the shards starting
        // from an arbitrary rotation (workers finish in any order).
        let mut parts: Vec<Vec<f64>> = vec![Vec::new(); shards];
        for (index, &value) in values.iter().enumerate() {
            parts[index % shards].push(value);
        }
        let mut merged = QuantileSketch::default();
        for offset in 0..shards {
            merged.merge(&sketch_of(&parts[(offset + rotate) % shards]));
        }

        prop_assert_eq!(merged, whole);
    }

    /// Every quantile estimate is within `gamma` relative error of the
    /// exact nearest-rank percentile of the sorted data.
    #[test]
    fn rank_error_is_bounded_by_gamma(values in drains(), q in 0.0f64..1.0) {
        let sketch = sketch_of(&values);
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let exact = exact_nearest_rank(&sorted, q);
        let estimate = sketch.quantile(q);
        prop_assert!(
            (estimate - exact).abs() <= sketch.gamma() * exact.abs(),
            "q={}: estimate {} vs exact {} (gamma {})",
            q, estimate, exact, sketch.gamma()
        );
    }

    /// Extremes are exact, counts add up, and the merged count matches.
    #[test]
    fn merge_preserves_count_and_extremes(a in drains(), b in drains()) {
        let mut merged = sketch_of(&a);
        merged.merge(&sketch_of(&b));
        prop_assert_eq!(merged.count(), (a.len() + b.len()) as u64);
        let min = a.iter().chain(&b).cloned().fold(f64::INFINITY, f64::min);
        let max = a.iter().chain(&b).cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(merged.min(), min);
        prop_assert_eq!(merged.max(), max);
    }
}
