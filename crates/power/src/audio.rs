//! Audio subsystem power model.

use serde::{Deserialize, Serialize};

/// Constant-power audio model: codec plus speaker while anything plays.
/// Playback power does not scale with the number of mixing apps, but all
/// players share responsibility for it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AudioModel {
    /// Draw while at least one stream is playing, mW.
    pub playing_mw: f64,
}

impl AudioModel {
    /// A Nexus-4-class codec and speaker.
    pub fn nexus4() -> Self {
        AudioModel { playing_mw: 330.0 }
    }

    /// Draw given whether any stream is active, mW.
    pub fn power_mw(&self, any_playing: bool) -> f64 {
        if any_playing {
            self.playing_mw
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silent_is_free() {
        assert_eq!(AudioModel::nexus4().power_mw(false), 0.0);
    }

    #[test]
    fn playing_draws_constant_power() {
        let audio = AudioModel::nexus4();
        assert_eq!(audio.power_mw(true), audio.playing_mw);
    }
}
