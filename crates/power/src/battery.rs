//! Coulomb-counting battery model.

use serde::{Deserialize, Serialize};

use crate::Energy;

/// A state-of-charge → reported-percent mapping.
///
/// Real battery gauges are not linear in stored energy: lithium-ion packs
/// show a flat voltage plateau through the middle of discharge and a steep
/// knee near empty, so the *reported* percentage moves slowly mid-discharge
/// and collapses at the end. The curve is a piecewise-linear map from the
/// true energy fraction remaining (`[0, 1]`) to the displayed percent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DischargeCurve {
    /// `(energy_fraction_remaining, displayed_percent)` control points,
    /// ascending in the first coordinate, covering 0.0 and 1.0.
    points: Vec<(f64, f64)>,
}

impl DischargeCurve {
    /// The identity curve: displayed percent equals the energy fraction.
    pub fn linear() -> Self {
        DischargeCurve {
            points: vec![(0.0, 0.0), (1.0, 100.0)],
        }
    }

    /// A lithium-ion-like gauge: optimistic through the plateau, a steep
    /// knee below ~15 % true charge.
    pub fn lithium_ion() -> Self {
        DischargeCurve {
            points: vec![
                (0.0, 0.0),
                (0.05, 2.0),
                (0.15, 10.0),
                (0.50, 45.0),
                (0.90, 92.0),
                (1.0, 100.0),
            ],
        }
    }

    /// Builds a curve from control points; they are sorted and clamped, and
    /// endpoints at 0 and 1 are added if missing.
    pub fn from_points(mut points: Vec<(f64, f64)>) -> Self {
        for (fraction, percent) in &mut points {
            *fraction = fraction.clamp(0.0, 1.0);
            *percent = percent.clamp(0.0, 100.0);
        }
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        if points.first().map(|p| p.0) != Some(0.0) {
            points.insert(0, (0.0, 0.0));
        }
        if points.last().map(|p| p.0) != Some(1.0) {
            points.push((1.0, 100.0));
        }
        DischargeCurve { points }
    }

    /// Maps a true energy fraction remaining to the displayed percent.
    pub fn percent_at(&self, fraction: f64) -> f64 {
        let fraction = fraction.clamp(0.0, 1.0);
        let mut previous = self.points[0];
        for &point in &self.points[1..] {
            if fraction <= point.0 {
                let span = point.0 - previous.0;
                if span <= f64::EPSILON {
                    return point.1;
                }
                let t = (fraction - previous.0) / span;
                return previous.1 + t * (point.1 - previous.1);
            }
            previous = point;
        }
        previous.1
    }
}

impl Default for DischargeCurve {
    fn default() -> Self {
        DischargeCurve::linear()
    }
}

/// A smartphone battery tracked by drained energy.
///
/// The paper's Figure 3 plots remaining battery percentage against wall
/// time under different attacks; this model supplies the percentage. The
/// state of charge is linear in drained energy — adequate because every
/// experiment compares *configurations* on the same pack, and any monotone
/// SoC curve preserves their ordering.
///
/// # Example
///
/// ```
/// use ea_power::{Battery, Energy};
///
/// let mut battery = Battery::nexus4();
/// assert_eq!(battery.percent(), 100.0);
/// let _ = battery.drain(Energy::from_joules(battery.capacity().as_joules() / 2.0));
/// assert!((battery.percent() - 50.0).abs() < 1e-9);
/// assert!(!battery.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    capacity: Energy,
    drained: Energy,
    curve: DischargeCurve,
}

impl Battery {
    /// A Nexus-4 pack: 2100 mAh at a 3.8 V nominal voltage ≈ 28.7 kJ.
    pub fn nexus4() -> Self {
        Battery::with_capacity_mah(2_100.0, 3.8)
    }

    /// Builds a pack from a datasheet rating.
    pub fn with_capacity_mah(mah: f64, nominal_volts: f64) -> Self {
        Battery {
            capacity: Energy::from_joules(mah.max(0.0) * nominal_volts.max(0.0) * 3.6),
            drained: Energy::ZERO,
            curve: DischargeCurve::linear(),
        }
    }

    /// Builds a pack from a raw energy capacity.
    pub fn with_capacity(capacity: Energy) -> Self {
        Battery {
            capacity,
            drained: Energy::ZERO,
            curve: DischargeCurve::linear(),
        }
    }

    /// Replaces the gauge's state-of-charge curve (default: linear).
    pub fn with_discharge_curve(mut self, curve: DischargeCurve) -> Self {
        self.curve = curve;
        self
    }

    /// Total capacity.
    pub fn capacity(&self) -> Energy {
        self.capacity
    }

    /// Energy drained so far (never exceeds capacity).
    pub fn drained(&self) -> Energy {
        self.drained
    }

    /// Energy remaining.
    pub fn remaining(&self) -> Energy {
        self.capacity.saturating_sub(self.drained)
    }

    /// State of charge in percent, 0–100, as the gauge reports it (through
    /// the discharge curve; linear by default).
    pub fn percent(&self) -> f64 {
        self.curve
            .percent_at(self.remaining().fraction_of(self.capacity))
    }

    /// Whether the pack is fully drained.
    pub fn is_empty(&self) -> bool {
        self.remaining().is_zero()
    }

    /// Drains `energy`, clamping at empty. Returns the energy actually
    /// drained (less than `energy` only at the very end of discharge).
    pub fn drain(&mut self, energy: Energy) -> Energy {
        let available = self.remaining();
        let taken = if energy > available {
            available
        } else {
            energy
        };
        self.drained += taken;
        taken
    }

    /// Recharges to full.
    pub fn recharge(&mut self) {
        self.drained = Energy::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nexus4_capacity_matches_datasheet() {
        let battery = Battery::nexus4();
        // 2100 mAh * 3.8 V * 3.6 = 28 728 J.
        assert!((battery.capacity().as_joules() - 28_728.0).abs() < 1e-6);
    }

    #[test]
    fn percent_declines_linearly() {
        let mut battery = Battery::with_capacity(Energy::from_joules(100.0));
        let _ = battery.drain(Energy::from_joules(25.0));
        assert!((battery.percent() - 75.0).abs() < 1e-9);
    }

    #[test]
    fn drain_clamps_at_empty() {
        let mut battery = Battery::with_capacity(Energy::from_joules(10.0));
        let taken = battery.drain(Energy::from_joules(25.0));
        assert!((taken.as_joules() - 10.0).abs() < 1e-12);
        assert!(battery.is_empty());
        assert_eq!(battery.percent(), 0.0);

        let extra = battery.drain(Energy::from_joules(1.0));
        assert!(extra.is_zero());
    }

    #[test]
    fn recharge_restores_full() {
        let mut battery = Battery::nexus4();
        let _ = battery.drain(Energy::from_joules(1_000.0));
        battery.recharge();
        assert_eq!(battery.percent(), 100.0);
    }

    #[test]
    fn lithium_curve_is_monotone_and_bounded() {
        let curve = DischargeCurve::lithium_ion();
        let mut last = -1.0;
        for step in 0..=100 {
            let percent = curve.percent_at(step as f64 / 100.0);
            assert!((0.0..=100.0).contains(&percent));
            assert!(percent >= last, "monotone in remaining energy");
            last = percent;
        }
        assert_eq!(curve.percent_at(0.0), 0.0);
        assert_eq!(curve.percent_at(1.0), 100.0);
    }

    #[test]
    fn lithium_gauge_collapses_near_empty() {
        let mut battery = Battery::with_capacity(Energy::from_joules(100.0))
            .with_discharge_curve(DischargeCurve::lithium_ion());
        let _ = battery.drain(Energy::from_joules(50.0));
        // The plateau reads below the true 50%.
        assert!(battery.percent() < 50.0);
        let _ = battery.drain(Energy::from_joules(45.0));
        // Near-empty knee: 5% true charge reads ~2%.
        assert!(battery.percent() < 5.0);
    }

    #[test]
    fn from_points_normalises_input() {
        let curve = DischargeCurve::from_points(vec![(0.5, 150.0), (-0.2, -10.0)]);
        assert_eq!(curve.percent_at(0.0), 0.0);
        assert_eq!(curve.percent_at(1.0), 100.0);
        assert!(
            (curve.percent_at(0.5) - 100.0).abs() < 1e-9,
            "clamped to 100"
        );
    }

    #[test]
    fn zero_capacity_pack_is_always_empty() {
        let battery = Battery::with_capacity(Energy::ZERO);
        assert!(battery.is_empty());
        assert_eq!(battery.percent(), 0.0);
    }
}
