//! Utilization-based linear-regression calibration (§II methodology).
//!
//! The energy-modeling line of work the paper builds on fits a linear model
//! `power = β₀ + β₁·cpu_util + β₂·screen_level + β₃·camera + β₄·audio`
//! from `(utilization, measured power)` samples — PowerTutor's approach.
//! This module implements that fit with ordinary least squares over the
//! normal equations, so the repository can *regenerate* a profiler's model
//! from observed discharge, and also demonstrate §II's caveat that
//! "utilization based approaches could have an error rate as high as about
//! 20 %" when the true hardware is non-linear (tails, DVFS steps, gamma
//! brightness curves).

use serde::{Deserialize, Serialize};

use crate::usage::DeviceUsage;

/// One calibration observation: a usage snapshot and the power meter's
/// reading over the same interval.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerSample {
    /// What the device was doing.
    pub usage: DeviceUsage,
    /// Measured total draw, mW.
    pub measured_mw: f64,
}

/// The fitted linear model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearPowerModel {
    /// β₀ — idle/base draw, mW.
    pub base_mw: f64,
    /// β₁ — per core-second of CPU work, mW.
    pub cpu_mw_per_core: f64,
    /// β₂ — per unit of screen level (`on × brightness/255`), mW.
    pub screen_mw_per_level: f64,
    /// β₃ — camera-open draw, mW.
    pub camera_mw: f64,
    /// β₄ — audio-playing draw, mW.
    pub audio_mw: f64,
    /// Root-mean-square residual of the fit, mW.
    pub rms_error_mw: f64,
    /// Mean absolute percentage error over the training samples — the §II
    /// "error rate".
    pub mape: f64,
}

fn features(usage: &DeviceUsage) -> [f64; 5] {
    let screen_level = if usage.screen.on {
        f64::from(usage.screen.brightness) / 255.0
    } else {
        0.0
    };
    [
        1.0,
        usage.total_cpu(),
        screen_level,
        if usage.camera.is_some() { 1.0 } else { 0.0 },
        if usage.audio.is_empty() { 0.0 } else { 1.0 },
    ]
}

/// Solves the symmetric linear system `A·x = b` by Gaussian elimination with
/// partial pivoting. Returns `None` for singular systems (e.g. a feature
/// never varies in the samples).
fn solve(mut a: [[f64; 5]; 5], mut b: [f64; 5]) -> Option<[f64; 5]> {
    const N: usize = 5;
    for column in 0..N {
        // Pivot.
        let pivot_row = (column..N)
            .max_by(|&x, &y| {
                a[x][column]
                    .abs()
                    .partial_cmp(&a[y][column].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(column);
        if a[pivot_row][column].abs() < 1e-12 {
            return None;
        }
        a.swap(column, pivot_row);
        b.swap(column, pivot_row);

        for row in column + 1..N {
            let factor = a[row][column] / a[column][column];
            let (pivot_rows, rest) = a.split_at_mut(row);
            let pivot = &pivot_rows[column];
            for (k, value) in rest[0].iter_mut().enumerate().skip(column) {
                *value -= factor * pivot[k];
            }
            b[row] -= factor * b[column];
        }
    }
    // Back substitution.
    let mut x = [0.0; N];
    for row in (0..N).rev() {
        let mut sum = b[row];
        for k in row + 1..N {
            sum -= a[row][k] * x[k];
        }
        x[row] = sum / a[row][row];
    }
    Some(x)
}

/// Fits the §II linear model with ordinary least squares. Requires at least
/// five samples with variation in every feature; returns `None` otherwise.
pub fn fit_power_model(samples: &[PowerSample]) -> Option<LinearPowerModel> {
    if samples.len() < 5 {
        return None;
    }
    // Normal equations: (XᵀX)·β = Xᵀy.
    let mut xtx = [[0.0f64; 5]; 5];
    let mut xty = [0.0f64; 5];
    for sample in samples {
        let row = features(&sample.usage);
        for i in 0..5 {
            for j in 0..5 {
                xtx[i][j] += row[i] * row[j];
            }
            xty[i] += row[i] * sample.measured_mw;
        }
    }
    let beta = solve(xtx, xty)?;

    let mut squared_error = 0.0;
    let mut percent_error = 0.0;
    let mut percent_count = 0usize;
    for sample in samples {
        let row = features(&sample.usage);
        let predicted: f64 = row.iter().zip(&beta).map(|(x, b)| x * b).sum();
        let error = predicted - sample.measured_mw;
        squared_error += error * error;
        if sample.measured_mw.abs() > 1e-9 {
            percent_error += (error / sample.measured_mw).abs();
            percent_count += 1;
        }
    }

    Some(LinearPowerModel {
        base_mw: beta[0],
        cpu_mw_per_core: beta[1],
        screen_mw_per_level: beta[2],
        camera_mw: beta[3],
        audio_mw: beta[4],
        rms_error_mw: (squared_error / samples.len() as f64).sqrt(),
        mape: if percent_count > 0 {
            percent_error / percent_count as f64
        } else {
            0.0
        },
    })
}

impl LinearPowerModel {
    /// Predicts total draw for a usage snapshot, mW.
    pub fn predict_mw(&self, usage: &DeviceUsage) -> f64 {
        let row = features(usage);
        let beta = [
            self.base_mw,
            self.cpu_mw_per_core,
            self.screen_mw_per_level,
            self.camera_mw,
            self.audio_mw,
        ];
        row.iter().zip(&beta).map(|(x, b)| x * b).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::usage::{CameraUse, CpuUse, ScreenUsage};
    use crate::DevicePowerModel;
    use ea_sim::{SimDuration, SimTime, Uid};

    fn usage(cpu: f64, brightness: Option<u8>, camera: bool, audio: bool) -> DeviceUsage {
        let mut u = DeviceUsage::idle();
        if cpu > 0.0 {
            u.cpu.push(CpuUse {
                uid: Uid::FIRST_APP,
                utilization: cpu,
            });
        }
        if let Some(b) = brightness {
            u.screen = ScreenUsage::on(b, Some(Uid::FIRST_APP));
        }
        if camera {
            u.camera = Some(CameraUse {
                uid: Uid::FIRST_APP,
                recording: true,
            });
        }
        if audio {
            u.audio.push(Uid::FIRST_APP);
        }
        u
    }

    fn grid() -> Vec<DeviceUsage> {
        let mut snapshots = Vec::new();
        for cpu_step in 0..6 {
            for &brightness in &[None, Some(1u8), Some(64), Some(128), Some(255)] {
                for &camera in &[false, true] {
                    for &audio in &[false, true] {
                        snapshots.push(usage(cpu_step as f64 * 0.3, brightness, camera, audio));
                    }
                }
            }
        }
        snapshots
    }

    #[test]
    fn recovers_an_exactly_linear_ground_truth() {
        let truth = LinearPowerModel {
            base_mw: 100.0,
            cpu_mw_per_core: 400.0,
            screen_mw_per_level: 700.0,
            camera_mw: 1_200.0,
            audio_mw: 330.0,
            rms_error_mw: 0.0,
            mape: 0.0,
        };
        let samples: Vec<PowerSample> = grid()
            .into_iter()
            .map(|u| PowerSample {
                measured_mw: truth.predict_mw(&u),
                usage: u,
            })
            .collect();
        let fitted = fit_power_model(&samples).expect("well-conditioned");
        assert!((fitted.base_mw - truth.base_mw).abs() < 1e-6);
        assert!((fitted.cpu_mw_per_core - truth.cpu_mw_per_core).abs() < 1e-6);
        assert!((fitted.screen_mw_per_level - truth.screen_mw_per_level).abs() < 1e-6);
        assert!((fitted.camera_mw - truth.camera_mw).abs() < 1e-6);
        assert!((fitted.audio_mw - truth.audio_mw).abs() < 1e-6);
        assert!(fitted.rms_error_mw < 1e-6);
    }

    #[test]
    fn linear_fit_of_the_nonlinear_handset_has_real_error() {
        // §II: "utilization based approaches could have an error rate as
        // high as about 20%". Our handset model is non-linear (DVFS steps,
        // gamma brightness), so the linear fit must show a visible but
        // bounded error rate.
        let mut handset = DevicePowerModel::nexus4();
        let mut now = SimTime::ZERO;
        // Calibration runs with the device awake (as PowerTutor's training
        // scripts do): fully-suspended samples would mix the 6 mW suspend
        // floor into the awake base and blow up the percentage error.
        let samples: Vec<PowerSample> = grid()
            .into_iter()
            .filter(|u| u.screen.on)
            .map(|u| {
                now += SimDuration::from_secs(10); // outrun radio tails
                PowerSample {
                    measured_mw: handset.total_mw(now, &u),
                    usage: u,
                }
            })
            .collect();
        let fitted = fit_power_model(&samples).expect("well-conditioned");
        assert!(
            fitted.mape > 0.01,
            "non-linear hardware cannot be fit exactly: mape={}",
            fitted.mape
        );
        assert!(
            fitted.mape < 0.30,
            "but the linear model is still usable (paper: ~20%): mape={}",
            fitted.mape
        );
        // The recovered coefficients are physically plausible.
        assert!(fitted.cpu_mw_per_core > 100.0);
        assert!(fitted.screen_mw_per_level > 200.0);
        assert!(fitted.camera_mw > 500.0);
    }

    #[test]
    fn needs_variation_in_every_feature() {
        // All-idle samples: the CPU/screen/camera/audio columns are zero —
        // singular system.
        let samples: Vec<PowerSample> = (0..10)
            .map(|_| PowerSample {
                usage: DeviceUsage::idle(),
                measured_mw: 6.0,
            })
            .collect();
        assert!(fit_power_model(&samples).is_none());
    }

    #[test]
    fn too_few_samples_is_rejected() {
        let samples: Vec<PowerSample> = grid()
            .into_iter()
            .take(3)
            .map(|u| PowerSample {
                usage: u,
                measured_mw: 100.0,
            })
            .collect();
        assert!(fit_power_model(&samples).is_none());
    }

    #[test]
    fn prediction_matches_feature_algebra() {
        let model = LinearPowerModel {
            base_mw: 10.0,
            cpu_mw_per_core: 100.0,
            screen_mw_per_level: 200.0,
            camera_mw: 300.0,
            audio_mw: 50.0,
            rms_error_mw: 0.0,
            mape: 0.0,
        };
        let u = usage(0.5, Some(255), true, true);
        // 10 + 100*0.5 + 200*1.0 + 300 + 50 = 610.
        assert!((model.predict_mw(&u) - 610.0).abs() < 1e-9);
    }
}
