//! Camera power model.
//!
//! The camera is "the most energy draining app" in the paper's motivating
//! example (Figure 1): the Message app starts the Camera via an intent and
//! the recording energy lands on the wrong app. The model distinguishes
//! preview from active video recording.

use serde::{Deserialize, Serialize};

/// Camera usage mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CameraMode {
    /// Viewfinder running, not recording.
    Preview,
    /// Actively recording video (sensor + ISP + encoder).
    Recording,
}

/// Constant-power camera model.
///
/// # Example
///
/// ```
/// use ea_power::{CameraMode, CameraModel};
///
/// let cam = CameraModel::nexus4();
/// assert!(cam.power_mw(CameraMode::Recording) > cam.power_mw(CameraMode::Preview));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CameraModel {
    /// Viewfinder draw, mW.
    pub preview_mw: f64,
    /// Recording draw (sensor + ISP + encoder), mW.
    pub recording_mw: f64,
}

impl CameraModel {
    /// A Nexus-4-class 8 MP module.
    pub fn nexus4() -> Self {
        CameraModel {
            preview_mw: 620.0,
            recording_mw: 1_260.0,
        }
    }

    /// Draw for the given mode, mW.
    pub fn power_mw(&self, mode: CameraMode) -> f64 {
        match mode {
            CameraMode::Preview => self.preview_mw,
            CameraMode::Recording => self.recording_mw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_dominates_preview() {
        let cam = CameraModel::nexus4();
        assert!(cam.power_mw(CameraMode::Recording) > cam.power_mw(CameraMode::Preview));
    }

    #[test]
    fn camera_is_an_energy_hog() {
        // Recording must out-draw a fully-lit Nexus 4 screen; this ordering
        // is what makes Figure 1's misattribution dramatic.
        let cam = CameraModel::nexus4();
        let screen = crate::ScreenModel::nexus4();
        assert!(cam.power_mw(CameraMode::Recording) > screen.power_mw(true, 255));
    }
}
