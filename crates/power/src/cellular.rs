//! Cellular modem power model (RRC state machine).
//!
//! The 3G/LTE modem is the canonical tail-energy component: after traffic
//! stops, the radio lingers in the high-power DCH state, demotes to FACH,
//! and only then returns to idle. The timer values follow the commonly
//! published 3G defaults.

use serde::{Deserialize, Serialize};

use ea_sim::{SimDuration, SimTime, Uid};

use crate::usage::RadioUse;

/// RRC-like radio resource states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellularState {
    /// Dedicated channel — full-power transfer state.
    Dch,
    /// Shared channel — intermediate power.
    Fach,
    /// Camped, no radio resources.
    Idle,
}

/// Cellular modem model with DCH/FACH demotion tails.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellularModel {
    /// Idle (camped) draw, mW.
    pub idle_mw: f64,
    /// FACH-state draw, mW.
    pub fach_mw: f64,
    /// DCH-state draw, mW.
    pub dch_mw: f64,
    /// Throughput above which transfers use DCH, kbps.
    pub dch_threshold_kbps: f64,
    /// DCH→FACH demotion timer.
    pub dch_tail: SimDuration,
    /// FACH→idle demotion timer (measured from last activity).
    pub fach_tail: SimDuration,
    last_active_at: Option<SimTime>,
    last_state: CellularState,
    last_users: Vec<Uid>,
}

impl CellularModel {
    /// A Nexus-4-class 3G/HSPA modem with classic timer values.
    pub fn nexus4() -> Self {
        CellularModel {
            idle_mw: 10.0,
            fach_mw: 460.0,
            dch_mw: 800.0,
            dch_threshold_kbps: 150.0,
            dch_tail: SimDuration::from_secs(5),
            fach_tail: SimDuration::from_secs(12),
            last_active_at: None,
            last_state: CellularState::Idle,
            last_users: Vec::new(),
        }
    }

    /// Observes the interval ending at `now`, returning
    /// `(power_mw, responsible_uids, state)`. The returned slice borrows the
    /// model's own last-user record — no per-tick clone.
    pub fn observe(&mut self, now: SimTime, traffic: &[RadioUse]) -> (f64, &[Uid], CellularState) {
        let total_kbps: f64 = traffic
            .iter()
            .map(|radio| radio.throughput_kbps.max(0.0))
            .sum();
        if total_kbps > 0.0 {
            let state = if total_kbps >= self.dch_threshold_kbps {
                CellularState::Dch
            } else {
                CellularState::Fach
            };
            self.last_active_at = Some(now);
            self.last_state = state;
            self.last_users.clear();
            self.last_users.extend(
                traffic
                    .iter()
                    .filter(|radio| radio.throughput_kbps > 0.0)
                    .map(|radio| radio.uid),
            );
            return (self.power_of(state), &self.last_users, state);
        }

        let state = self.state_at(now);
        let users: &[Uid] = if state == CellularState::Idle {
            &[]
        } else {
            &self.last_users
        };
        (self.power_of(state), users, state)
    }

    /// The state the modem is in at `now`, accounting for demotion timers.
    pub fn state_at(&self, now: SimTime) -> CellularState {
        let Some(at) = self.last_active_at else {
            return CellularState::Idle;
        };
        let since = now.saturating_since(at);
        match self.last_state {
            CellularState::Dch if since <= self.dch_tail => CellularState::Dch,
            _ if since <= self.fach_tail => CellularState::Fach,
            _ => CellularState::Idle,
        }
    }

    /// Power of a given state, mW.
    pub fn power_of(&self, state: CellularState) -> f64 {
        match state {
            CellularState::Dch => self.dch_mw,
            CellularState::Fach => self.fach_mw,
            CellularState::Idle => self.idle_mw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uid(n: u32) -> Uid {
        Uid::from_raw(10_000 + n)
    }

    fn radio(n: u32, kbps: f64) -> RadioUse {
        RadioUse {
            uid: uid(n),
            throughput_kbps: kbps,
        }
    }

    #[test]
    fn heavy_traffic_promotes_to_dch() {
        let mut cell = CellularModel::nexus4();
        let (power, _, state) = cell.observe(SimTime::ZERO, &[radio(1, 500.0)]);
        assert_eq!(state, CellularState::Dch);
        assert_eq!(power, cell.dch_mw);
    }

    #[test]
    fn light_traffic_uses_fach() {
        let mut cell = CellularModel::nexus4();
        let (_, _, state) = cell.observe(SimTime::ZERO, &[radio(1, 50.0)]);
        assert_eq!(state, CellularState::Fach);
    }

    #[test]
    fn demotion_chain_dch_fach_idle() {
        let mut cell = CellularModel::nexus4();
        cell.observe(SimTime::ZERO, &[radio(1, 500.0)]);

        // Inside the DCH tail.
        let (_, users, state) = cell.observe(SimTime::from_secs(3), &[]);
        assert_eq!(state, CellularState::Dch);
        assert_eq!(users, vec![uid(1)]);

        // After DCH tail, inside FACH tail.
        let (_, users, state) = cell.observe(SimTime::from_secs(8), &[]);
        assert_eq!(state, CellularState::Fach);
        assert_eq!(users, vec![uid(1)]);

        // After both tails.
        let (power, users, state) = cell.observe(SimTime::from_secs(20), &[]);
        assert_eq!(state, CellularState::Idle);
        assert!(users.is_empty());
        assert_eq!(power, cell.idle_mw);
    }

    #[test]
    fn idle_with_no_history() {
        let cell = CellularModel::nexus4();
        assert_eq!(cell.state_at(SimTime::from_secs(9)), CellularState::Idle);
    }

    #[test]
    fn fach_activity_never_reports_dch_tail() {
        let mut cell = CellularModel::nexus4();
        cell.observe(SimTime::ZERO, &[radio(1, 50.0)]);
        let (_, _, state) = cell.observe(SimTime::from_secs(2), &[]);
        assert_eq!(
            state,
            CellularState::Fach,
            "FACH transfers demote straight to idle"
        );
    }
}
