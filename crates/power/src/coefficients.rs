//! Worst-case per-component power ceilings for static analysis.
//!
//! `ea-lint`'s abstract interpreter prices abstract resource occupancies
//! (screen forced on, a core pinned, the radio held active, …) into a
//! joules-per-day upper bound. For that bound to be *sound* it must use
//! ceilings no dynamic run can exceed, and for it to be *honest* those
//! ceilings must come from the same calibration the simulator drains
//! with. [`DevicePowerModel::coefficients`] exposes exactly that: the
//! maximum draw each component model can produce, read off the model
//! itself rather than duplicated as magic numbers in the analyzer.

use crate::camera::CameraMode;
use crate::model::DevicePowerModel;

/// Per-component worst-case draws (mW) distilled from a
/// [`DevicePowerModel`].
///
/// Every field is the supremum of the corresponding component model over
/// its input domain, except `radio_max_mw` which additionally assumes a
/// saturated 10 Mbps WiFi link — the throughput ceiling the bundled
/// workloads stay under.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerCoefficients {
    /// Static draw of an awake application processor, mW.
    pub cpu_awake_mw: f64,
    /// Awake CPU running one full core at the top DVFS level, mW.
    pub cpu_core_max_mw: f64,
    /// Screen at full brightness and full content luma, mW.
    pub screen_max_mw: f64,
    /// The busier radio (WiFi at the saturation throughput vs cellular
    /// DCH), mW.
    pub radio_max_mw: f64,
    /// GPS in its hungriest phase (acquisition), mW.
    pub gps_max_mw: f64,
    /// Camera in its hungriest mode (recording), mW.
    pub camera_max_mw: f64,
    /// Audio pipeline while playing, mW.
    pub audio_max_mw: f64,
    /// Whole-device suspended floor, mW.
    pub suspend_mw: f64,
}

/// WiFi throughput (Mbps) assumed for the radio ceiling: the bundled
/// scenario and fleet workloads never request more.
const RADIO_CEILING_MBPS: f64 = 10.0;

impl DevicePowerModel {
    /// Distills this calibration into per-component worst-case draws.
    ///
    /// # Example
    ///
    /// ```
    /// let coeffs = ea_power::DevicePowerModel::nexus4().coefficients();
    /// assert!(coeffs.screen_max_mw > coeffs.cpu_awake_mw);
    /// assert!(coeffs.cpu_core_max_mw > coeffs.cpu_awake_mw);
    /// ```
    pub fn coefficients(&self) -> PowerCoefficients {
        let wifi_max = self.wifi.active_mw + self.wifi.mw_per_mbps * RADIO_CEILING_MBPS;
        PowerCoefficients {
            cpu_awake_mw: self.cpu.awake_mw,
            cpu_core_max_mw: self.cpu.power_mw(1.0),
            screen_max_mw: self.screen.power_with_content(true, u8::MAX, 1.0),
            radio_max_mw: wifi_max.max(self.cellular.dch_mw),
            gps_max_mw: self.gps.acquire_mw.max(self.gps.track_mw),
            camera_max_mw: self
                .camera
                .power_mw(CameraMode::Recording)
                .max(self.camera.power_mw(CameraMode::Preview)),
            audio_max_mw: self.audio.power_mw(true),
            suspend_mw: self.suspend_mw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceilings_dominate_every_model_output() {
        let model = DevicePowerModel::nexus4();
        let coeffs = model.coefficients();
        // Screen: sweep brightness and luma.
        for brightness in [0u8, 64, 128, 255] {
            for luma in [0.0, 0.5, 1.0] {
                assert!(
                    coeffs.screen_max_mw >= model.screen.power_with_content(true, brightness, luma)
                );
            }
        }
        // CPU: one core at any utilization.
        for util in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert!(coeffs.cpu_core_max_mw >= model.cpu.power_mw(util));
        }
        // Peripherals.
        assert!(coeffs.gps_max_mw >= model.gps.track_mw);
        assert!(coeffs.camera_max_mw >= model.camera.power_mw(CameraMode::Preview));
        assert!(coeffs.radio_max_mw >= model.cellular.dch_mw);
        assert!(coeffs.radio_max_mw >= model.wifi.active_mw);
    }

    #[test]
    fn galaxy_nexus_differs_only_where_calibrated() {
        let n4 = DevicePowerModel::nexus4().coefficients();
        let gn = DevicePowerModel::galaxy_nexus().coefficients();
        assert_eq!(n4.radio_max_mw, gn.radio_max_mw, "same radios");
        assert_ne!(n4.screen_max_mw, gn.screen_max_mw, "different panels");
    }
}
