//! Hardware component identities.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A power-drawing hardware component of the simulated handset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Component {
    /// The application processor.
    Cpu,
    /// The LCD/OLED panel and backlight.
    Screen,
    /// The WiFi radio.
    Wifi,
    /// The cellular modem.
    Cellular,
    /// The GPS receiver.
    Gps,
    /// The camera sensor and ISP.
    Camera,
    /// The audio codec and speaker.
    Audio,
}

impl Component {
    /// All components, in display order.
    pub const ALL: [Component; 7] = [
        Component::Cpu,
        Component::Screen,
        Component::Wifi,
        Component::Cellular,
        Component::Gps,
        Component::Camera,
        Component::Audio,
    ];

    /// This component's position in [`Component::ALL`], as a dense array
    /// index for flat per-component accumulators.
    pub fn index(self) -> usize {
        match self {
            Component::Cpu => 0,
            Component::Screen => 1,
            Component::Wifi => 2,
            Component::Cellular => 3,
            Component::Gps => 4,
            Component::Camera => 5,
            Component::Audio => 6,
        }
    }

    /// A short lowercase label for tables and JSON keys.
    pub fn label(self) -> &'static str {
        match self {
            Component::Cpu => "cpu",
            Component::Screen => "screen",
            Component::Wifi => "wifi",
            Component::Cellular => "cellular",
            Component::Gps => "gps",
            Component::Camera => "camera",
            Component::Audio => "audio",
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = Component::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Component::ALL.len());
    }

    #[test]
    fn display_matches_label() {
        for component in Component::ALL {
            assert_eq!(component.to_string(), component.label());
        }
    }
}
