//! Utilization-based CPU power model.
//!
//! Both BatteryStats and PowerTutor estimate CPU energy from per-app CPU
//! time and the active frequency: power grows linearly with utilization,
//! with a per-core coefficient that depends on the DVFS level the governor
//! picked. We model an interactive governor that raises the frequency level
//! with total demand.

use serde::{Deserialize, Serialize};

/// One DVFS operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FreqLevel {
    /// Total-utilization threshold (in cores) up to which this level is
    /// chosen by the governor.
    pub up_to_util: f64,
    /// Dynamic power per core-second of work at this level, in milliwatts.
    pub mw_per_core: f64,
}

/// Linear-regression CPU power model with DVFS levels.
///
/// `power = awake_mw + total_util × mw_per_core(level)` while the device is
/// awake; a suspended CPU draws nothing here (the device-level suspend floor
/// is modelled in [`crate::DevicePowerModel`]).
///
/// # Example
///
/// ```
/// use ea_power::CpuModel;
///
/// let cpu = CpuModel::nexus4();
/// let idle = cpu.power_mw(0.0);
/// let busy = cpu.power_mw(1.0);
/// assert!(busy > idle);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuModel {
    /// Static draw of an awake (non-suspended) application processor, mW.
    pub awake_mw: f64,
    /// DVFS ladder, ordered by `up_to_util`.
    pub levels: Vec<FreqLevel>,
}

impl CpuModel {
    /// A Nexus-4-class quad-core ladder.
    pub fn nexus4() -> Self {
        CpuModel {
            awake_mw: 120.0,
            levels: vec![
                FreqLevel {
                    up_to_util: 0.3,
                    mw_per_core: 210.0,
                },
                FreqLevel {
                    up_to_util: 0.7,
                    mw_per_core: 430.0,
                },
                FreqLevel {
                    up_to_util: f64::INFINITY,
                    mw_per_core: 760.0,
                },
            ],
        }
    }

    /// The per-core dynamic coefficient the governor picks for a given total
    /// utilization (in cores).
    pub fn mw_per_core(&self, total_util: f64) -> f64 {
        self.levels
            .iter()
            .find(|level| total_util <= level.up_to_util)
            .or(self.levels.last())
            .map(|level| level.mw_per_core)
            .unwrap_or(0.0)
    }

    /// Total CPU power at `total_util` cores of granted utilization, while
    /// awake.
    pub fn power_mw(&self, total_util: f64) -> f64 {
        let util = total_util.max(0.0);
        self.awake_mw + util * self.mw_per_core(util)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_in_utilization() {
        let cpu = CpuModel::nexus4();
        let mut last = f64::MIN;
        for step in 0..=40 {
            let util = step as f64 / 10.0;
            let p = cpu.power_mw(util);
            assert!(p >= last, "power must not decrease with load");
            last = p;
        }
    }

    #[test]
    fn governor_escalates_levels() {
        let cpu = CpuModel::nexus4();
        assert_eq!(cpu.mw_per_core(0.1), 210.0);
        assert_eq!(cpu.mw_per_core(0.5), 430.0);
        assert_eq!(cpu.mw_per_core(3.0), 760.0);
    }

    #[test]
    fn idle_awake_draws_only_static_power() {
        let cpu = CpuModel::nexus4();
        assert!((cpu.power_mw(0.0) - cpu.awake_mw).abs() < 1e-12);
    }

    #[test]
    fn negative_utilization_clamps() {
        let cpu = CpuModel::nexus4();
        assert!((cpu.power_mw(-1.0) - cpu.awake_mw).abs() < 1e-12);
    }

    #[test]
    fn empty_ladder_is_static_only() {
        let cpu = CpuModel {
            awake_mw: 10.0,
            levels: Vec::new(),
        };
        assert!((cpu.power_mw(2.0) - 10.0).abs() < 1e-12);
    }
}
