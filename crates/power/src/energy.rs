//! The energy quantity.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

use serde::{Deserialize, Serialize};

use ea_sim::SimDuration;

/// An amount of energy, stored in joules.
///
/// Constructed either directly or by integrating a power draw over a
/// simulated interval with [`Energy::from_power`].
///
/// # Example
///
/// ```
/// use ea_power::Energy;
/// use ea_sim::SimDuration;
///
/// // 1 W for 10 s = 10 J.
/// let e = Energy::from_power(1_000.0, SimDuration::from_secs(10));
/// assert!((e.as_joules() - 10.0).abs() < 1e-9);
/// assert!((e.as_millijoules() - 10_000.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[must_use]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy from joules. Negative values are clamped to zero:
    /// components never generate energy.
    pub fn from_joules(joules: f64) -> Self {
        Energy(joules.max(0.0))
    }

    /// Creates an energy from milliwatt-hours (battery datasheet unit).
    pub fn from_mwh(mwh: f64) -> Self {
        Energy::from_joules(mwh * 3.6)
    }

    /// Integrates a power draw in milliwatts over `dt`.
    pub fn from_power(power_mw: f64, dt: SimDuration) -> Self {
        Energy::from_joules(power_mw / 1_000.0 * dt.as_secs_f64())
    }

    /// The value in joules.
    pub fn as_joules(self) -> f64 {
        self.0
    }

    /// The value in millijoules (the unit of the paper's figures).
    pub fn as_millijoules(self) -> f64 {
        self.0 * 1_000.0
    }

    /// The value in milliwatt-hours.
    pub fn as_mwh(self) -> f64 {
        self.0 / 3.6
    }

    /// Whether this is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Saturating subtraction (clamps at zero).
    pub fn saturating_sub(self, other: Energy) -> Energy {
        Energy((self.0 - other.0).max(0.0))
    }

    /// This energy as a fraction of `total`, or zero when `total` is zero.
    pub fn fraction_of(self, total: Energy) -> f64 {
        if total.0 > 0.0 {
            self.0 / total.0
        } else {
            0.0
        }
    }
}

impl Add for Energy {
    type Output = Energy;

    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;

    /// Clamped at zero, like [`Energy::saturating_sub`].
    fn sub(self, rhs: Energy) -> Energy {
        self.saturating_sub(rhs)
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;

    fn mul(self, rhs: f64) -> Energy {
        Energy::from_joules(self.0 * rhs)
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, Add::add)
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.2}J", self.0)
        } else {
            write!(f, "{:.1}mJ", self.as_millijoules())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrates_power_over_time() {
        // 500 mW over 2 s = 1 J.
        let e = Energy::from_power(500.0, SimDuration::from_secs(2));
        assert!((e.as_joules() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mwh_round_trip() {
        let e = Energy::from_mwh(100.0);
        assert!((e.as_mwh() - 100.0).abs() < 1e-9);
        assert!((e.as_joules() - 360.0).abs() < 1e-9);
    }

    #[test]
    fn negative_inputs_clamp_to_zero() {
        assert!(Energy::from_joules(-5.0).is_zero());
        assert!(Energy::from_power(-100.0, SimDuration::from_secs(1)).is_zero());
    }

    #[test]
    fn arithmetic() {
        let a = Energy::from_joules(3.0);
        let b = Energy::from_joules(1.0);
        assert!(((a + b).as_joules() - 4.0).abs() < 1e-12);
        assert!(((a - b).as_joules() - 2.0).abs() < 1e-12);
        assert!((b - a).is_zero(), "subtraction saturates");
        assert!(((a * 0.5).as_joules() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn sum_of_iterator() {
        let total: Energy = (1..=4).map(|i| Energy::from_joules(i as f64)).sum();
        assert!((total.as_joules() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_of_handles_zero_total() {
        assert_eq!(Energy::from_joules(1.0).fraction_of(Energy::ZERO), 0.0);
        let frac = Energy::from_joules(1.0).fraction_of(Energy::from_joules(4.0));
        assert!((frac - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(Energy::from_joules(2.5).to_string(), "2.50J");
        assert_eq!(Energy::from_joules(0.0421).to_string(), "42.1mJ");
    }
}
