//! GPS receiver power model.
//!
//! The receiver is either acquiring a fix (hot, high draw), tracking
//! (steady draw), or off. Acquisition cost is modelled as a fixed-duration
//! high-power phase after the first requester appears.

use serde::{Deserialize, Serialize};

use ea_sim::{SimDuration, SimTime, Uid};

/// GPS receiver model. The receiver is shared: its power does not grow with
/// the number of requesting apps, but all requesters share responsibility.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpsModel {
    /// Draw during initial acquisition, mW.
    pub acquire_mw: f64,
    /// Steady tracking draw, mW.
    pub track_mw: f64,
    /// How long acquisition lasts after a cold start.
    pub acquire_time: SimDuration,
    session_started_at: Option<SimTime>,
}

impl GpsModel {
    /// A Nexus-4-class receiver.
    pub fn nexus4() -> Self {
        GpsModel {
            acquire_mw: 520.0,
            track_mw: 380.0,
            acquire_time: SimDuration::from_secs(6),
            session_started_at: None,
        }
    }

    /// Observes the interval ending at `now` with `holders` holding GPS
    /// sessions; returns `(power_mw, responsible_uids)`. The responsible
    /// uids are exactly the holders, so the input slice is returned
    /// directly — no per-tick clone.
    pub fn observe<'a>(&mut self, now: SimTime, holders: &'a [Uid]) -> (f64, &'a [Uid]) {
        if holders.is_empty() {
            self.session_started_at = None;
            return (0.0, &[]);
        }
        let started = *self.session_started_at.get_or_insert(now);
        let power = if now.saturating_since(started) < self.acquire_time {
            self.acquire_mw
        } else {
            self.track_mw
        };
        (power, holders)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uid(n: u32) -> Uid {
        Uid::from_raw(10_000 + n)
    }

    #[test]
    fn off_when_no_holders() {
        let mut gps = GpsModel::nexus4();
        let (power, users) = gps.observe(SimTime::ZERO, &[]);
        assert_eq!(power, 0.0);
        assert!(users.is_empty());
    }

    #[test]
    fn acquisition_then_tracking() {
        let mut gps = GpsModel::nexus4();
        let (p0, _) = gps.observe(SimTime::ZERO, &[uid(1)]);
        assert_eq!(p0, gps.acquire_mw);
        let (p1, _) = gps.observe(SimTime::from_secs(10), &[uid(1)]);
        assert_eq!(p1, gps.track_mw);
    }

    #[test]
    fn releasing_resets_acquisition() {
        let mut gps = GpsModel::nexus4();
        gps.observe(SimTime::ZERO, &[uid(1)]);
        gps.observe(SimTime::from_secs(10), &[uid(1)]);
        gps.observe(SimTime::from_secs(11), &[]); // all released
        let (p, _) = gps.observe(SimTime::from_secs(12), &[uid(1)]);
        assert_eq!(p, gps.acquire_mw, "cold start re-acquires");
    }

    #[test]
    fn power_does_not_scale_with_holder_count() {
        let mut gps = GpsModel::nexus4();
        let (single, _) = gps.observe(SimTime::from_secs(100), &[uid(1)]);
        let mut gps2 = GpsModel::nexus4();
        let holders = [uid(1), uid(2)];
        let (multi, users) = gps2.observe(SimTime::from_secs(100), &holders);
        assert_eq!(single, multi);
        assert_eq!(users.len(), 2);
    }
}
