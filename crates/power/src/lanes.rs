//! Struct-of-arrays power-model state: many devices, one kernel.
//!
//! [`DevicePowerModel`] carries its radio finite-state machines *inside*
//! the sub-model structs, so a fleet of N devices is N scattered
//! heap objects and every step is a chain of per-device calls. This
//! module flattens the only stateful pieces — the WiFi/cellular tail
//! clocks, the cellular RRC state, the radio user lists, and the GPS
//! session start — into parallel arrays indexed by *lane*, and keeps a
//! single parameter block shared by every lane. Stepping a fleet is then
//! a sweep over flat arrays with no per-device virtual dispatch, and
//! spawning a device is an index grab (see `ea-fleet`'s arena).
//!
//! Byte-identity contract: [`PowerLanes::observe_into`] replicates
//! [`DevicePowerModel::draws_into`] operation for operation — same
//! branch structure, same floating-point evaluation order, same user
//! ordering — so a profiler stepping through a lane produces bit-equal
//! ledgers, graphs, and battery bits to one stepping the model structs.
//! The golden and property suites pin that contract.
//!
//! The screen model is stateless but its gamma curve costs a `powf`
//! per evaluation; lanes memoize it per `(on, brightness, luma)` so a
//! steady-state step pays the transcendental only when the panel state
//! actually changes. The cached value is the bit-exact result of the
//! original computation, so memoization is invisible to accounting.

use ea_sim::{SimTime, Uid};

use crate::model::fill_equal_shares;
use crate::usage::RadioUse;
use crate::{
    CameraMode, CellularState, Component, ComponentDraw, DevicePowerModel, DeviceUsage, UsageShare,
};

/// Flat per-lane state for one radio FSM with a tail clock.
#[derive(Debug, Clone, Default)]
struct TailLane {
    last_active_at: Vec<Option<SimTime>>,
    last_users: Vec<Vec<Uid>>,
}

impl TailLane {
    fn push(&mut self) {
        self.last_active_at.push(None);
        self.last_users.push(Vec::new());
    }

    fn reset(&mut self, lane: usize) {
        self.last_active_at[lane] = None;
        self.last_users[lane].clear();
    }
}

/// Struct-of-arrays power state for a block of device lanes sharing one
/// hardware calibration.
///
/// # Example
///
/// ```
/// use ea_power::{DevicePowerModel, DeviceUsage, PowerLanes, ScreenUsage};
/// use ea_sim::{SimTime, Uid};
///
/// let mut lanes = PowerLanes::new(DevicePowerModel::nexus4());
/// let lane = lanes.push_lane();
/// let mut usage = DeviceUsage::idle();
/// usage.screen = ScreenUsage::on(128, Some(Uid::FIRST_APP));
/// let mut draws = Vec::new();
/// lanes.observe_into(lane, SimTime::ZERO, &usage, &mut draws);
/// assert!(draws.iter().any(|d| d.component == ea_power::Component::Screen));
/// ```
#[derive(Debug, Clone)]
pub struct PowerLanes {
    /// Shared parameter block. Its embedded FSM state is never advanced;
    /// the per-lane arrays below replace it.
    model: DevicePowerModel,
    wifi: TailLane,
    cellular: TailLane,
    cellular_state: Vec<CellularState>,
    gps_started: Vec<Option<SimTime>>,
    /// Screen memo key: `(on, brightness, luma bits)`; `None` = cold.
    screen_key: Vec<Option<(bool, u8, u64)>>,
    screen_mw: Vec<f64>,
}

impl PowerLanes {
    /// An empty lane block parameterized by `model` (used as the shared
    /// calibration; its internal FSM state is ignored).
    #[must_use]
    pub fn new(model: DevicePowerModel) -> Self {
        PowerLanes {
            model,
            wifi: TailLane::default(),
            cellular: TailLane::default(),
            cellular_state: Vec::new(),
            gps_started: Vec::new(),
            screen_key: Vec::new(),
            screen_mw: Vec::new(),
        }
    }

    /// The shared hardware calibration.
    #[must_use]
    pub fn model(&self) -> &DevicePowerModel {
        &self.model
    }

    /// Appends one fresh lane and returns its index.
    pub fn push_lane(&mut self) -> usize {
        self.wifi.push();
        self.cellular.push();
        self.cellular_state.push(CellularState::Idle);
        self.gps_started.push(None);
        self.screen_key.push(None);
        self.screen_mw.push(0.0);
        self.wifi.last_active_at.len() - 1
    }

    /// Number of lanes in the block.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.wifi.last_active_at.len()
    }

    /// Restores `lane` to the factory state a fresh [`push_lane`] would
    /// produce, so an arena can recycle it for a newly spawned device
    /// with no cross-device bleed.
    ///
    /// [`push_lane`]: PowerLanes::push_lane
    pub fn reset_lane(&mut self, lane: usize) {
        self.wifi.reset(lane);
        self.cellular.reset(lane);
        self.cellular_state[lane] = CellularState::Idle;
        self.gps_started[lane] = None;
        self.screen_key[lane] = None;
        self.screen_mw[lane] = 0.0;
    }

    /// Whether `lane` is indistinguishable from a freshly pushed lane.
    #[must_use]
    pub fn lane_is_clean(&self, lane: usize) -> bool {
        self.wifi.last_active_at[lane].is_none()
            && self.wifi.last_users[lane].is_empty()
            && self.cellular.last_active_at[lane].is_none()
            && self.cellular.last_users[lane].is_empty()
            && self.cellular_state[lane] == CellularState::Idle
            && self.gps_started[lane].is_none()
            && self.screen_key[lane].is_none()
    }

    /// Whether `lane`, observed at `now` under `usage`, has reached a
    /// *settled* operating point: every future [`observe_into`] with the
    /// same `usage` at any later instant returns bit-identical draws and
    /// mutates no lane state.
    ///
    /// Settled means no radio traffic this interval, both radio tails
    /// already expired (an unexpired tail changes power when it lapses),
    /// and no GPS session (GPS transitions acquire → track on a clock).
    /// The CPU, screen, camera, and audio draws are pure functions of
    /// `usage`, so they impose no extra conditions. Callers check this
    /// *after* a full observe so the screen memo is warm and an ended GPS
    /// session has been cleared; a batch engine may then replay the
    /// interval's precomputed charges instead of re-evaluating the kernel
    /// — bit-equal by construction, because repeating an identical f64
    /// accumulation is the recomputation.
    ///
    /// [`observe_into`]: PowerLanes::observe_into
    #[must_use]
    pub fn lane_is_settled(&self, lane: usize, now: SimTime, usage: &DeviceUsage) -> bool {
        let wifi_quiet = !usage.wifi.iter().any(|radio| radio.throughput_kbps > 0.0);
        let cell_quiet = !usage
            .cellular
            .iter()
            .any(|radio| radio.throughput_kbps > 0.0);
        let wifi_tail_done = self.wifi.last_active_at[lane]
            .is_none_or(|at| now.saturating_since(at) > self.model.wifi.tail);
        let cell_tail_done = self.cellular.last_active_at[lane].is_none_or(|at| {
            let since = now.saturating_since(at);
            since > self.model.cellular.dch_tail && since > self.model.cellular.fach_tail
        });
        wifi_quiet
            && cell_quiet
            && wifi_tail_done
            && cell_tail_done
            && usage.gps.is_empty()
            && self.gps_started[lane].is_none()
    }

    /// Lane-state mirror of [`WifiModel::observe`](crate::WifiModel::observe):
    /// identical branches and arithmetic against `lane`'s flat state.
    pub fn wifi_observe(
        &mut self,
        lane: usize,
        now: SimTime,
        traffic: &[RadioUse],
    ) -> (f64, &[Uid]) {
        let params = &self.model.wifi;
        let last_at = &mut self.wifi.last_active_at[lane];
        let users = &mut self.wifi.last_users[lane];
        let total_kbps: f64 = traffic
            .iter()
            .map(|radio| radio.throughput_kbps.max(0.0))
            .sum();
        if total_kbps > 0.0 {
            *last_at = Some(now);
            users.clear();
            users.extend(
                traffic
                    .iter()
                    .filter(|radio| radio.throughput_kbps > 0.0)
                    .map(|radio| radio.uid),
            );
            let power = params.active_mw + params.mw_per_mbps * (total_kbps / 1_000.0);
            return (power, users);
        }
        // WifiPhase::Tail test, inlined: active or in-tail, but not *at*
        // the activity instant (that would be Active, unreachable here
        // because total_kbps == 0).
        let in_tail = last_at
            .is_some_and(|at| now >= at && now.saturating_since(at) <= params.tail && now != at);
        if in_tail {
            (params.tail_mw, users)
        } else {
            (params.idle_mw, &[])
        }
    }

    /// Lane-state mirror of
    /// [`CellularModel::observe`](crate::CellularModel::observe).
    pub fn cellular_observe(
        &mut self,
        lane: usize,
        now: SimTime,
        traffic: &[RadioUse],
    ) -> (f64, &[Uid], CellularState) {
        let params = &self.model.cellular;
        let last_at = &mut self.cellular.last_active_at[lane];
        let last_state = &mut self.cellular_state[lane];
        let users = &mut self.cellular.last_users[lane];
        let total_kbps: f64 = traffic
            .iter()
            .map(|radio| radio.throughput_kbps.max(0.0))
            .sum();
        if total_kbps > 0.0 {
            let state = if total_kbps >= params.dch_threshold_kbps {
                CellularState::Dch
            } else {
                CellularState::Fach
            };
            *last_at = Some(now);
            *last_state = state;
            users.clear();
            users.extend(
                traffic
                    .iter()
                    .filter(|radio| radio.throughput_kbps > 0.0)
                    .map(|radio| radio.uid),
            );
            return (params.power_of(state), users, state);
        }
        let state = match *last_at {
            None => CellularState::Idle,
            Some(at) => {
                let since = now.saturating_since(at);
                match *last_state {
                    CellularState::Dch if since <= params.dch_tail => CellularState::Dch,
                    _ if since <= params.fach_tail => CellularState::Fach,
                    _ => CellularState::Idle,
                }
            }
        };
        let users: &[Uid] = if state == CellularState::Idle {
            &[]
        } else {
            users
        };
        (params.power_of(state), users, state)
    }

    /// Lane-state mirror of [`GpsModel::observe`](crate::GpsModel::observe).
    pub fn gps_observe<'a>(
        &mut self,
        lane: usize,
        now: SimTime,
        holders: &'a [Uid],
    ) -> (f64, &'a [Uid]) {
        let params = &self.model.gps;
        let started_slot = &mut self.gps_started[lane];
        if holders.is_empty() {
            *started_slot = None;
            return (0.0, &[]);
        }
        let started = *started_slot.get_or_insert(now);
        let power = if now.saturating_since(started) < params.acquire_time {
            params.acquire_mw
        } else {
            params.track_mw
        };
        (power, holders)
    }

    /// Screen draw with per-lane memoization: bit-equal to
    /// [`ScreenModel::power_with_content`](crate::ScreenModel::power_with_content),
    /// paying the gamma `powf` only when the panel inputs change.
    pub fn screen_power(&mut self, lane: usize, on: bool, brightness: u8, luma: f64) -> f64 {
        let key = Some((on, brightness, luma.to_bits()));
        if self.screen_key[lane] != key {
            self.screen_key[lane] = key;
            self.screen_mw[lane] = self.model.screen.power_with_content(on, brightness, luma);
        }
        self.screen_mw[lane]
    }

    /// Computes the per-component draws for the interval ending at `now`
    /// under `usage`, against `lane`'s flat state — the batch-kernel
    /// replica of [`DevicePowerModel::draws_into`], byte-identical in
    /// output and allocation-free at steady state.
    pub fn observe_into(
        &mut self,
        lane: usize,
        now: SimTime,
        usage: &DeviceUsage,
        out: &mut Vec<ComponentDraw>,
    ) {
        // Reclaim the users allocations from last tick's draws (at most 7).
        let mut pool: [Vec<UsageShare>; 7] = Default::default();
        for (slot, draw) in pool.iter_mut().zip(out.drain(..)) {
            *slot = draw.users;
            slot.clear();
        }
        let mut pool = pool.into_iter();

        // Radio FSMs must observe every interval, even idle ones, so their
        // tails expire on schedule. Each observe borrows lane state
        // immutably afterwards, so take copies of what the suspend check
        // and share fills need.
        let (wifi_mw, wifi_empty) = {
            let (mw, users) = self.wifi_observe(lane, now, &usage.wifi);
            (mw, users.is_empty())
        };
        let (cell_mw, cell_empty) = {
            let (mw, users, _) = self.cellular_observe(lane, now, &usage.cellular);
            (mw, users.is_empty())
        };
        let (gps_mw, _) = self.gps_observe(lane, now, &usage.gps);

        if !usage.is_active() && wifi_empty && cell_empty {
            out.push(ComponentDraw {
                component: Component::Cpu,
                power_mw: self.model.suspend_mw,
                users: pool.next().unwrap_or_default(),
            });
            return;
        }

        // CPU: static awake draw is unattributed; the dynamic part is split
        // by granted utilization.
        let total_util = usage.total_cpu();
        let cpu_mw = self.model.cpu.power_mw(total_util);
        let dynamic_fraction = if cpu_mw > 0.0 {
            (cpu_mw - self.model.cpu.awake_mw).max(0.0) / cpu_mw
        } else {
            0.0
        };
        let mut cpu_users = pool.next().unwrap_or_default();
        if total_util > 0.0 {
            cpu_users.extend(
                usage
                    .cpu
                    .iter()
                    .filter(|cpu_use| cpu_use.utilization > 0.0)
                    .map(|cpu_use| UsageShare {
                        uid: cpu_use.uid,
                        share: cpu_use.utilization / total_util * dynamic_fraction,
                    }),
            );
        }
        out.push(ComponentDraw {
            component: Component::Cpu,
            power_mw: cpu_mw,
            users: cpu_users,
        });

        // Screen: all draw is "used by" the foreground app as a fact.
        let screen_mw = self.screen_power(
            lane,
            usage.screen.on,
            usage.screen.brightness,
            usage.screen.luma,
        );
        let mut screen_users = pool.next().unwrap_or_default();
        if let (true, Some(uid)) = (usage.screen.on, usage.screen.foreground) {
            screen_users.push(UsageShare { uid, share: 1.0 });
        }
        out.push(ComponentDraw {
            component: Component::Screen,
            power_mw: screen_mw,
            users: screen_users,
        });

        let mut wifi_shares = pool.next().unwrap_or_default();
        fill_equal_shares(&self.wifi.last_users[lane], &mut wifi_shares);
        if wifi_empty {
            wifi_shares.clear();
        }
        out.push(ComponentDraw {
            component: Component::Wifi,
            power_mw: wifi_mw,
            users: wifi_shares,
        });
        let mut cell_shares = pool.next().unwrap_or_default();
        fill_equal_shares(&self.cellular.last_users[lane], &mut cell_shares);
        if cell_empty {
            cell_shares.clear();
        }
        out.push(ComponentDraw {
            component: Component::Cellular,
            power_mw: cell_mw,
            users: cell_shares,
        });
        let mut gps_shares = pool.next().unwrap_or_default();
        fill_equal_shares(&usage.gps, &mut gps_shares);
        out.push(ComponentDraw {
            component: Component::Gps,
            power_mw: gps_mw,
            users: gps_shares,
        });

        let mut camera_users = pool.next().unwrap_or_default();
        let camera_mw = match usage.camera {
            Some(camera_use) => {
                let mode = if camera_use.recording {
                    CameraMode::Recording
                } else {
                    CameraMode::Preview
                };
                camera_users.push(UsageShare {
                    uid: camera_use.uid,
                    share: 1.0,
                });
                self.model.camera.power_mw(mode)
            }
            None => 0.0,
        };
        out.push(ComponentDraw {
            component: Component::Camera,
            power_mw: camera_mw,
            users: camera_users,
        });

        let mut audio_users = pool.next().unwrap_or_default();
        fill_equal_shares(&usage.audio, &mut audio_users);
        out.push(ComponentDraw {
            component: Component::Audio,
            power_mw: self.model.audio.power_mw(!usage.audio.is_empty()),
            users: audio_users,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::usage::ScreenUsage;

    fn uid(n: u32) -> Uid {
        Uid::from_raw(10_000 + n)
    }

    fn radio(n: u32, kbps: f64) -> RadioUse {
        RadioUse {
            uid: uid(n),
            throughput_kbps: kbps,
        }
    }

    /// Drives a model and a lane through the same usage script and demands
    /// bit-equal draws at every tick.
    fn assert_mirror(script: &[(u64, DeviceUsage)]) {
        let mut model = DevicePowerModel::nexus4();
        let mut lanes = PowerLanes::new(DevicePowerModel::nexus4());
        let lane = lanes.push_lane();
        let mut expected = Vec::new();
        let mut got = Vec::new();
        for (ms, usage) in script {
            let now = SimTime::from_millis(*ms);
            model.draws_into(now, usage, &mut expected);
            lanes.observe_into(lane, now, usage, &mut got);
            assert_eq!(expected.len(), got.len(), "draw count at t={ms}ms");
            for (a, b) in expected.iter().zip(&got) {
                assert_eq!(a.component, b.component);
                assert_eq!(
                    a.power_mw.to_bits(),
                    b.power_mw.to_bits(),
                    "{:?} power at t={ms}ms",
                    a.component
                );
                assert_eq!(a.users, b.users, "{:?} users at t={ms}ms", a.component);
            }
        }
    }

    #[test]
    fn lane_mirrors_model_through_radio_tails_and_suspend() {
        let mut active = DeviceUsage::idle();
        active.screen = ScreenUsage::on(180, Some(uid(1)));
        active.wifi = vec![radio(1, 900.0), radio(2, 300.0)];
        active.cellular = vec![radio(3, 40.0)];
        active.gps = vec![uid(2)];

        let mut tail_only = DeviceUsage::idle();
        tail_only.screen = ScreenUsage::on(180, Some(uid(1)));

        let idle = DeviceUsage::idle();

        let mut heavy_cell = DeviceUsage::idle();
        heavy_cell.screen = ScreenUsage::on(64, Some(uid(3)));
        heavy_cell.cellular = vec![radio(3, 900.0)];

        assert_mirror(&[
            (0, active.clone()),
            (250, tail_only.clone()),
            (500, tail_only.clone()),
            (1_500, idle.clone()),
            (7_000, heavy_cell.clone()),
            (9_000, tail_only.clone()),
            (13_000, tail_only.clone()),
            (30_000, idle.clone()),
            (30_250, active),
            (31_000, idle),
        ]);
    }

    #[test]
    fn screen_memo_is_bit_exact_across_changes() {
        let mut lanes = PowerLanes::new(DevicePowerModel::nexus4());
        let lane = lanes.push_lane();
        let screen = crate::ScreenModel::nexus4();
        for (on, brightness, luma) in [
            (true, 200u8, 0.5f64),
            (true, 200, 0.5),
            (true, 90, 0.5),
            (true, 90, 0.9),
            (false, 90, 0.9),
            (true, 200, 0.5),
        ] {
            let memo = lanes.screen_power(lane, on, brightness, luma);
            let fresh = screen.power_with_content(on, brightness, luma);
            assert_eq!(memo.to_bits(), fresh.to_bits());
        }
    }

    #[test]
    fn reset_lane_is_state_clean() {
        let mut lanes = PowerLanes::new(DevicePowerModel::nexus4());
        let lane = lanes.push_lane();
        let mut usage = DeviceUsage::idle();
        usage.screen = ScreenUsage::on(255, Some(uid(1)));
        usage.wifi = vec![radio(1, 2_000.0)];
        usage.cellular = vec![radio(1, 500.0)];
        usage.gps = vec![uid(1)];
        let mut out = Vec::new();
        lanes.observe_into(lane, SimTime::ZERO, &usage, &mut out);
        assert!(!lanes.lane_is_clean(lane));
        lanes.reset_lane(lane);
        assert!(lanes.lane_is_clean(lane));

        // A recycled lane behaves exactly like a fresh one.
        let fresh = lanes.push_lane();
        let mut recycled_draws = Vec::new();
        let mut fresh_draws = Vec::new();
        lanes.observe_into(lane, SimTime::from_secs(1), &usage, &mut recycled_draws);
        lanes.observe_into(fresh, SimTime::from_secs(1), &usage, &mut fresh_draws);
        assert_eq!(recycled_draws, fresh_draws);
    }
}
