//! # ea-power — smartphone hardware power models and battery
//!
//! This crate replaces the Nexus 4 handset of the E-Android paper with the
//! published model families that the paper's profilers themselves use:
//!
//! * a utilization-based linear-regression **CPU** model with frequency
//!   levels, the PowerTutor/BatteryStats approach ([`CpuModel`]),
//! * a brightness-linear **screen** model — the paper's attacks #5 and #6
//!   hinge on the screen being the dominant consumer ([`ScreenModel`]),
//! * finite-state **radio** models (WiFi, cellular, GPS) with promotion and
//!   *tail* states, following the system-call-tracing line of work the paper
//!   cites ([`WifiModel`], [`CellularModel`], [`GpsModel`]),
//! * constant-power **camera** and **audio** models ([`CameraModel`],
//!   [`AudioModel`]),
//! * a coulomb-counting **battery** calibrated to a Nexus-4-class pack
//!   ([`Battery`]),
//! * [`DevicePowerModel`]: the composition of all of the above, which turns a
//!   [`DeviceUsage`] snapshot into per-component power draws with per-UID
//!   usage shares ([`ComponentDraw`]) — the *facts* that the accounting
//!   policies in `ea-core` attribute to apps.
//!
//! Attribution **policy** (who gets charged for the screen, what counts as
//! collateral) deliberately lives in `ea-core`, not here: this crate reports
//! physics, not blame.
//!
//! ## Example
//!
//! ```
//! use ea_power::{Battery, DevicePowerModel, DeviceUsage, ScreenUsage};
//! use ea_sim::{SimTime, Uid};
//!
//! let mut model = DevicePowerModel::nexus4();
//! let mut usage = DeviceUsage::idle();
//! usage.screen = ScreenUsage::on(200, Some(Uid::FIRST_APP));
//!
//! let draws = model.draws(SimTime::ZERO, &usage);
//! let screen_mw: f64 = draws
//!     .iter()
//!     .filter(|d| d.component == ea_power::Component::Screen)
//!     .map(|d| d.power_mw)
//!     .sum();
//! assert!(screen_mw > 100.0);
//!
//! let mut battery = Battery::nexus4();
//! let _ = battery.drain(ea_power::Energy::from_joules(100.0));
//! assert!(battery.percent() < 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Fallible paths must return errors, not panic: unwrap/expect are
// banned outside tests (DESIGN.md §11). Carve-outs need an explicit
// `#[allow]` with a proof of infallibility.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod audio;
mod battery;
mod calibrate;
mod camera;
mod cellular;
mod coefficients;
mod component;
mod cpu;
mod energy;
mod gps;
mod lanes;
mod model;
mod screen;
mod usage;
mod wifi;

pub use audio::AudioModel;
pub use battery::{Battery, DischargeCurve};
pub use calibrate::{fit_power_model, LinearPowerModel, PowerSample};
pub use camera::{CameraMode, CameraModel};
pub use cellular::{CellularModel, CellularState};
pub use coefficients::PowerCoefficients;
pub use component::Component;
pub use cpu::CpuModel;
pub use energy::Energy;
pub use gps::GpsModel;
pub use lanes::PowerLanes;
pub use model::{ComponentDraw, DevicePowerModel, UsageShare};
pub use screen::ScreenModel;
pub use usage::{CameraUse, CpuUse, DeviceUsage, RadioUse, ScreenUsage};
pub use wifi::WifiModel;
