//! The composed handset power model.

use serde::{Deserialize, Serialize};

use ea_sim::{SimTime, Uid};

use crate::usage::DeviceUsage;
use crate::{
    AudioModel, CameraMode, CameraModel, CellularModel, Component, CpuModel, GpsModel, ScreenModel,
    WifiModel,
};

/// One app's share of a component's power draw over an interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UsageShare {
    /// The app.
    pub uid: Uid,
    /// Fraction of the component's draw attributable to this app's usage,
    /// in `[0, 1]`. Shares across an entry sum to at most 1; the remainder
    /// is unattributed system draw.
    pub share: f64,
}

/// A component's power draw over a snapshot interval, with usage facts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentDraw {
    /// Which component.
    pub component: Component,
    /// Total draw, mW.
    pub power_mw: f64,
    /// Usage-proportional responsibility facts. Empty means purely system
    /// draw. For the screen this carries the *foreground app*; whether the
    /// foreground app is actually billed is the accounting policy's call.
    pub users: Vec<UsageShare>,
}

impl ComponentDraw {
    /// The share attributed to `uid`, or zero.
    pub fn share_of(&self, uid: Uid) -> f64 {
        self.users
            .iter()
            .filter(|user| user.uid == uid)
            .map(|user| user.share)
            .sum()
    }

    /// Sum of all attributed shares (≤ 1).
    pub fn attributed(&self) -> f64 {
        self.users.iter().map(|user| user.share).sum()
    }
}

/// The full handset model: one sub-model per component plus the suspend
/// floor.
///
/// The radio sub-models are stateful (tail tracking), so [`draws`] takes
/// `&mut self` and must be called with non-decreasing timestamps.
///
/// [`draws`]: DevicePowerModel::draws
///
/// # Example
///
/// ```
/// use ea_power::{DevicePowerModel, DeviceUsage, ScreenUsage};
/// use ea_sim::{SimTime, Uid};
///
/// let mut model = DevicePowerModel::nexus4();
/// let mut usage = DeviceUsage::idle();
/// usage.screen = ScreenUsage::on(128, Some(Uid::FIRST_APP));
/// let draws = model.draws(SimTime::ZERO, &usage);
/// assert!(draws.iter().any(|d| d.component == ea_power::Component::Screen));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DevicePowerModel {
    /// CPU model.
    pub cpu: CpuModel,
    /// Screen model.
    pub screen: ScreenModel,
    /// WiFi radio model.
    pub wifi: WifiModel,
    /// Cellular modem model.
    pub cellular: CellularModel,
    /// GPS model.
    pub gps: GpsModel,
    /// Camera model.
    pub camera: CameraModel,
    /// Audio model.
    pub audio: AudioModel,
    /// Whole-device draw while suspended (everything quiet), mW.
    pub suspend_mw: f64,
}

impl DevicePowerModel {
    /// The Nexus-4 calibration used throughout the reproduction.
    pub fn nexus4() -> Self {
        DevicePowerModel {
            cpu: CpuModel::nexus4(),
            screen: ScreenModel::nexus4(),
            wifi: WifiModel::nexus4(),
            cellular: CellularModel::nexus4(),
            gps: GpsModel::nexus4(),
            camera: CameraModel::nexus4(),
            audio: AudioModel::nexus4(),
            suspend_mw: 6.0,
        }
    }

    /// A Galaxy-Nexus-class handset: same radios, AMOLED panel. Used by the
    /// panel-ablation benches to show the attack shapes are not an LCD
    /// artifact.
    pub fn galaxy_nexus() -> Self {
        DevicePowerModel {
            screen: ScreenModel::galaxy_nexus(),
            ..DevicePowerModel::nexus4()
        }
    }

    /// Computes the per-component draws for the interval ending at `now`
    /// under `usage`.
    ///
    /// When the device is fully idle it is considered suspended and only the
    /// suspend floor is reported (as unattributed CPU-component draw).
    pub fn draws(&mut self, now: SimTime, usage: &DeviceUsage) -> Vec<ComponentDraw> {
        let mut out = Vec::new();
        self.draws_into(now, usage, &mut out);
        out
    }

    /// Zero-allocation form of [`draws`](Self::draws): writes into `out`,
    /// recycling both the outer vector and the per-draw `users` allocations
    /// left there by the previous tick. At steady state a profiler step
    /// touches the allocator zero times through this path.
    pub fn draws_into(&mut self, now: SimTime, usage: &DeviceUsage, out: &mut Vec<ComponentDraw>) {
        // Reclaim the users allocations from last tick's draws (at most 7).
        let mut pool: [Vec<UsageShare>; 7] = Default::default();
        for (slot, draw) in pool.iter_mut().zip(out.drain(..)) {
            *slot = draw.users;
            slot.clear();
        }
        let mut pool = pool.into_iter();

        // Radio FSMs must observe every interval, even idle ones, so their
        // tails expire on schedule.
        let (wifi_mw, wifi_users) = self.wifi.observe(now, &usage.wifi);
        let (cell_mw, cell_users, _) = self.cellular.observe(now, &usage.cellular);
        let (gps_mw, gps_users) = self.gps.observe(now, &usage.gps);

        if !usage.is_active() && wifi_users.is_empty() && cell_users.is_empty() {
            out.push(ComponentDraw {
                component: Component::Cpu,
                power_mw: self.suspend_mw,
                users: pool.next().unwrap_or_default(),
            });
            return;
        }

        // CPU: static awake draw is unattributed; the dynamic part is split
        // by granted utilization.
        let total_util = usage.total_cpu();
        let cpu_mw = self.cpu.power_mw(total_util);
        let dynamic_fraction = if cpu_mw > 0.0 {
            (cpu_mw - self.cpu.awake_mw).max(0.0) / cpu_mw
        } else {
            0.0
        };
        let mut cpu_users = pool.next().unwrap_or_default();
        if total_util > 0.0 {
            cpu_users.extend(
                usage
                    .cpu
                    .iter()
                    .filter(|cpu_use| cpu_use.utilization > 0.0)
                    .map(|cpu_use| UsageShare {
                        uid: cpu_use.uid,
                        share: cpu_use.utilization / total_util * dynamic_fraction,
                    }),
            );
        }
        out.push(ComponentDraw {
            component: Component::Cpu,
            power_mw: cpu_mw,
            users: cpu_users,
        });

        // Screen: all draw is "used by" the foreground app as a fact.
        let screen_mw = self.screen.power_with_content(
            usage.screen.on,
            usage.screen.brightness,
            usage.screen.luma,
        );
        let mut screen_users = pool.next().unwrap_or_default();
        if let (true, Some(uid)) = (usage.screen.on, usage.screen.foreground) {
            screen_users.push(UsageShare { uid, share: 1.0 });
        }
        out.push(ComponentDraw {
            component: Component::Screen,
            power_mw: screen_mw,
            users: screen_users,
        });

        let mut wifi_shares = pool.next().unwrap_or_default();
        fill_equal_shares(wifi_users, &mut wifi_shares);
        out.push(ComponentDraw {
            component: Component::Wifi,
            power_mw: wifi_mw,
            users: wifi_shares,
        });
        let mut cell_shares = pool.next().unwrap_or_default();
        fill_equal_shares(cell_users, &mut cell_shares);
        out.push(ComponentDraw {
            component: Component::Cellular,
            power_mw: cell_mw,
            users: cell_shares,
        });
        let mut gps_shares = pool.next().unwrap_or_default();
        fill_equal_shares(gps_users, &mut gps_shares);
        out.push(ComponentDraw {
            component: Component::Gps,
            power_mw: gps_mw,
            users: gps_shares,
        });

        let mut camera_users = pool.next().unwrap_or_default();
        let camera_mw = match usage.camera {
            Some(camera_use) => {
                let mode = if camera_use.recording {
                    CameraMode::Recording
                } else {
                    CameraMode::Preview
                };
                camera_users.push(UsageShare {
                    uid: camera_use.uid,
                    share: 1.0,
                });
                self.camera.power_mw(mode)
            }
            None => 0.0,
        };
        out.push(ComponentDraw {
            component: Component::Camera,
            power_mw: camera_mw,
            users: camera_users,
        });

        let mut audio_users = pool.next().unwrap_or_default();
        fill_equal_shares(&usage.audio, &mut audio_users);
        out.push(ComponentDraw {
            component: Component::Audio,
            power_mw: self.audio.power_mw(!usage.audio.is_empty()),
            users: audio_users,
        });
    }

    /// Total device draw for `usage` at `now`, mW.
    pub fn total_mw(&mut self, now: SimTime, usage: &DeviceUsage) -> f64 {
        self.draws(now, usage)
            .iter()
            .map(|draw| draw.power_mw)
            .sum()
    }
}

pub(crate) fn fill_equal_shares(uids: &[Uid], out: &mut Vec<UsageShare>) {
    if uids.is_empty() {
        return;
    }
    let share = 1.0 / uids.len() as f64;
    out.extend(uids.iter().map(|&uid| UsageShare { uid, share }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::usage::{CameraUse, CpuUse, RadioUse, ScreenUsage};

    fn uid(n: u32) -> Uid {
        Uid::from_raw(10_000 + n)
    }

    #[test]
    fn suspended_device_draws_only_the_floor() {
        let mut model = DevicePowerModel::nexus4();
        let draws = model.draws(SimTime::ZERO, &DeviceUsage::idle());
        assert_eq!(draws.len(), 1);
        assert_eq!(draws[0].power_mw, model.suspend_mw);
        assert!(draws[0].users.is_empty());
    }

    #[test]
    fn screen_draw_carries_foreground_fact() {
        let mut model = DevicePowerModel::nexus4();
        let mut usage = DeviceUsage::idle();
        usage.screen = ScreenUsage::on(128, Some(uid(3)));
        let draws = model.draws(SimTime::ZERO, &usage);
        let screen = draws
            .iter()
            .find(|d| d.component == Component::Screen)
            .unwrap();
        assert!(screen.power_mw > 0.0);
        assert_eq!(screen.users.len(), 1);
        assert_eq!(screen.users[0].uid, uid(3));
    }

    #[test]
    fn cpu_shares_are_utilization_proportional() {
        let mut model = DevicePowerModel::nexus4();
        let mut usage = DeviceUsage::idle();
        usage.cpu = vec![
            CpuUse {
                uid: uid(1),
                utilization: 0.6,
            },
            CpuUse {
                uid: uid(2),
                utilization: 0.2,
            },
        ];
        let draws = model.draws(SimTime::ZERO, &usage);
        let cpu = draws
            .iter()
            .find(|d| d.component == Component::Cpu)
            .unwrap();
        let a = cpu.share_of(uid(1));
        let b = cpu.share_of(uid(2));
        assert!(
            (a / b - 3.0).abs() < 1e-9,
            "3:1 utilization ratio preserved"
        );
        assert!(cpu.attributed() <= 1.0 + 1e-12);
    }

    #[test]
    fn camera_recording_attributed_to_holder() {
        let mut model = DevicePowerModel::nexus4();
        let mut usage = DeviceUsage::idle();
        usage.screen = ScreenUsage::on(100, Some(uid(1)));
        usage.camera = Some(CameraUse {
            uid: uid(2),
            recording: true,
        });
        let draws = model.draws(SimTime::ZERO, &usage);
        let camera = draws
            .iter()
            .find(|d| d.component == Component::Camera)
            .unwrap();
        assert_eq!(camera.users[0].uid, uid(2));
        assert_eq!(camera.power_mw, model.camera.recording_mw);
    }

    #[test]
    fn wifi_tail_keeps_device_accounted_after_traffic() {
        let mut model = DevicePowerModel::nexus4();
        let mut usage = DeviceUsage::idle();
        usage.screen = ScreenUsage::on(10, Some(uid(1)));
        usage.wifi = vec![RadioUse {
            uid: uid(1),
            throughput_kbps: 1_000.0,
        }];
        model.draws(SimTime::ZERO, &usage);

        // Device now idle, but within the wifi tail.
        let idle = DeviceUsage::idle();
        let draws = model.draws(SimTime::from_millis(200), &idle);
        let wifi = draws
            .iter()
            .find(|d| d.component == Component::Wifi)
            .expect("tail keeps the device active");
        assert_eq!(wifi.power_mw, model.wifi.tail_mw);
        assert_eq!(wifi.users[0].uid, uid(1));
    }

    #[test]
    fn total_is_sum_of_components() {
        let mut model = DevicePowerModel::nexus4();
        let mut usage = DeviceUsage::idle();
        usage.screen = ScreenUsage::on(255, Some(uid(1)));
        usage.cpu = vec![CpuUse {
            uid: uid(1),
            utilization: 0.5,
        }];
        let mut clone = model.clone();
        let total = model.total_mw(SimTime::ZERO, &usage);
        let sum: f64 = clone
            .draws(SimTime::ZERO, &usage)
            .iter()
            .map(|d| d.power_mw)
            .sum();
        assert!((total - sum).abs() < 1e-9);
    }

    #[test]
    fn audio_split_equally() {
        let mut model = DevicePowerModel::nexus4();
        let mut usage = DeviceUsage::idle();
        usage.audio = vec![uid(1), uid(2)];
        let draws = model.draws(SimTime::ZERO, &usage);
        let audio = draws
            .iter()
            .find(|d| d.component == Component::Audio)
            .unwrap();
        assert!((audio.share_of(uid(1)) - 0.5).abs() < 1e-12);
        assert!((audio.attributed() - 1.0).abs() < 1e-12);
    }
}
