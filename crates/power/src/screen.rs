//! Screen power model.
//!
//! The screen is the component the paper's attacks #4–#6 weaponise. We model
//! panel power as a base draw plus a brightness-dependent term. The
//! brightness *setting* (0–255) maps to backlight power through a concave
//! curve: Android's setting-to-PWM mapping is gamma-corrected, so the first
//! few setting steps buy disproportionate backlight power — which is exactly
//! why the paper's attack #5 ("secretly escalate the brightness with a few
//! levels") costs real energy while being visually subtle.

use serde::{Deserialize, Serialize};

/// Brightness- (and, for OLED, content-) dependent screen power model.
///
/// `power = base_mw + (range_mw + oled_luma_mw × luma) × (brightness/255)^gamma`
/// while the panel is lit; a dark panel draws nothing. For an LCD the
/// backlight dominates and `oled_luma_mw` is zero; for an OLED the emitted
/// content matters — a white screen is several times the cost of a dark one
/// (the Chameleon observation the paper cites among the screen-modeling
/// work).
///
/// # Example
///
/// ```
/// use ea_power::ScreenModel;
///
/// let lcd = ScreenModel::nexus4();
/// assert_eq!(lcd.power_mw(false, 255), 0.0);
/// assert!(lcd.power_mw(true, 255) > lcd.power_mw(true, 10));
///
/// let oled = ScreenModel::galaxy_nexus();
/// // Dark content is much cheaper than white content on OLED…
/// assert!(oled.power_with_content(true, 200, 0.1) < oled.power_with_content(true, 200, 0.9));
/// // …and irrelevant on LCD.
/// assert_eq!(
///     lcd.power_with_content(true, 200, 0.1),
///     lcd.power_with_content(true, 200, 0.9)
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScreenModel {
    /// Panel + display-pipeline static draw when lit, mW.
    pub base_mw: f64,
    /// Content-independent additional draw at maximum brightness, mW (the
    /// backlight for LCD panels).
    pub range_mw: f64,
    /// Content-dependent additional draw at maximum brightness showing a
    /// full-white frame, mW. Zero for LCD.
    pub oled_luma_mw: f64,
    /// Exponent of the setting→power curve (< 1 means concave: early levels
    /// are expensive).
    pub gamma: f64,
}

impl ScreenModel {
    /// Average content luminance assumed when the caller does not know the
    /// frame contents.
    pub const DEFAULT_LUMA: f64 = 0.5;

    /// A Nexus-4-class 4.7-inch LCD.
    pub fn nexus4() -> Self {
        ScreenModel {
            base_mw: 330.0,
            range_mw: 780.0,
            oled_luma_mw: 0.0,
            gamma: 0.5,
        }
    }

    /// A Galaxy-Nexus-class 4.65-inch AMOLED: lower floor, strongly
    /// content-dependent.
    pub fn galaxy_nexus() -> Self {
        ScreenModel {
            base_mw: 260.0,
            range_mw: 240.0,
            oled_luma_mw: 1_050.0,
            gamma: 0.6,
        }
    }

    /// Panel power assuming average content ([`Self::DEFAULT_LUMA`]).
    pub fn power_mw(&self, on: bool, brightness: u8) -> f64 {
        self.power_with_content(on, brightness, Self::DEFAULT_LUMA)
    }

    /// Panel power for a frame of average luminance `luma ∈ [0, 1]`.
    pub fn power_with_content(&self, on: bool, brightness: u8, luma: f64) -> f64 {
        if !on {
            return 0.0;
        }
        let level = f64::from(brightness) / 255.0;
        let dynamic = self.range_mw + self.oled_luma_mw * luma.clamp(0.0, 1.0);
        self.base_mw + dynamic * level.powf(self.gamma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_draws_nothing() {
        assert_eq!(ScreenModel::nexus4().power_mw(false, 200), 0.0);
    }

    #[test]
    fn monotone_in_brightness() {
        let screen = ScreenModel::nexus4();
        let mut last = 0.0;
        for b in 0..=255u16 {
            let p = screen.power_mw(true, b as u8);
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    fn concavity_makes_small_increases_expensive() {
        let screen = ScreenModel::nexus4();
        let low_step = screen.power_mw(true, 10) - screen.power_mw(true, 1);
        let high_step = screen.power_mw(true, 255) - screen.power_mw(true, 246);
        assert!(
            low_step > high_step,
            "early brightness levels must cost more per step (gamma < 1)"
        );
    }

    #[test]
    fn full_brightness_hits_base_plus_range() {
        let screen = ScreenModel::nexus4();
        let expected = screen.base_mw + screen.range_mw;
        assert!((screen.power_mw(true, 255) - expected).abs() < 1e-9);
    }

    #[test]
    fn oled_luma_scales_and_clamps() {
        let oled = ScreenModel::galaxy_nexus();
        let dark = oled.power_with_content(true, 255, 0.0);
        let white = oled.power_with_content(true, 255, 1.0);
        assert!((white - dark - oled.oled_luma_mw).abs() < 1e-9);
        // Out-of-range luma clamps instead of extrapolating.
        assert_eq!(oled.power_with_content(true, 255, 2.0), white);
        assert_eq!(oled.power_with_content(true, 255, -1.0), dark);
    }

    #[test]
    fn oled_dark_mode_beats_lcd_dark_mode() {
        // The classic OLED dark-mode saving: at equal brightness a dark
        // frame on AMOLED costs less than the same frame on LCD.
        let lcd = ScreenModel::nexus4();
        let oled = ScreenModel::galaxy_nexus();
        assert!(oled.power_with_content(true, 200, 0.05) < lcd.power_with_content(true, 200, 0.05));
    }

    #[test]
    fn zero_brightness_is_base_only() {
        let screen = ScreenModel::nexus4();
        assert!((screen.power_mw(true, 0) - screen.base_mw).abs() < 1e-9);
    }
}
