//! Device usage snapshots.
//!
//! A [`DeviceUsage`] is a piecewise-constant description of what every
//! component is doing and *on whose behalf*. The framework publishes a new
//! snapshot whenever anything relevant changes (activity switch, wakelock,
//! brightness write, camera start…); the accounting layer integrates power
//! over the interval between snapshots.

use serde::{Deserialize, Serialize};

use ea_sim::Uid;

/// CPU demand attributable to one app over the snapshot interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuUse {
    /// The app.
    pub uid: Uid,
    /// Granted utilization in cores (already scheduled, i.e. the scheduler's
    /// output, not raw demand).
    pub utilization: f64,
}

/// Screen panel state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScreenUsage {
    /// Whether the panel is lit.
    pub on: bool,
    /// Brightness level, 0–255 (Android's settings range).
    pub brightness: u8,
    /// Average luminance of the displayed frame, `[0, 1]` — drives OLED
    /// panel power, ignored by LCD models.
    pub luma: f64,
    /// The app owning the foreground activity, if any. This is a *fact*
    /// consumed by attribution policies; it does not affect the panel's
    /// power draw.
    pub foreground: Option<Uid>,
}

impl ScreenUsage {
    /// A lit screen at `brightness` with `foreground` in front, showing
    /// average content.
    pub fn on(brightness: u8, foreground: Option<Uid>) -> Self {
        ScreenUsage {
            on: true,
            brightness,
            luma: 0.5,
            foreground,
        }
    }

    /// Overrides the displayed content's average luminance.
    pub fn with_luma(mut self, luma: f64) -> Self {
        self.luma = luma.clamp(0.0, 1.0);
        self
    }

    /// A dark screen.
    pub fn off() -> Self {
        ScreenUsage {
            on: false,
            brightness: 0,
            luma: 0.0,
            foreground: None,
        }
    }
}

/// Camera activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CameraUse {
    /// The app holding the camera.
    pub uid: Uid,
    /// Preview vs. active recording (recording draws more).
    pub recording: bool,
}

/// Radio (WiFi/cellular) activity attributable to one app.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioUse {
    /// The app.
    pub uid: Uid,
    /// Application-level throughput in kilobits per second.
    pub throughput_kbps: f64,
}

/// A complete piecewise-constant usage snapshot of the handset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct DeviceUsage {
    /// Per-app granted CPU utilization.
    pub cpu: Vec<CpuUse>,
    /// Screen state.
    pub screen: ScreenUsage,
    /// Camera activity, if the camera is open.
    pub camera: Option<CameraUse>,
    /// Apps currently playing audio.
    pub audio: Vec<Uid>,
    /// Apps holding a GPS fix.
    pub gps: Vec<Uid>,
    /// Per-app WiFi traffic.
    pub wifi: Vec<RadioUse>,
    /// Per-app cellular traffic.
    pub cellular: Vec<RadioUse>,
}

impl Default for ScreenUsage {
    fn default() -> Self {
        ScreenUsage::off()
    }
}

impl DeviceUsage {
    /// A fully idle handset: screen off, no CPU demand, radios quiet.
    pub fn idle() -> Self {
        DeviceUsage::default()
    }

    /// Resets to the idle state while keeping every vector's capacity — the
    /// hot-loop companion of [`idle`](Self::idle), used by snapshot
    /// producers that refill the same buffer every tick.
    pub fn clear(&mut self) {
        self.cpu.clear();
        self.screen = ScreenUsage::off();
        self.camera = None;
        self.audio.clear();
        self.gps.clear();
        self.wifi.clear();
        self.cellular.clear();
    }

    /// Total granted CPU utilization across apps, in cores.
    pub fn total_cpu(&self) -> f64 {
        self.cpu.iter().map(|use_| use_.utilization).sum()
    }

    /// Total WiFi throughput across apps, in kbps.
    pub fn total_wifi_kbps(&self) -> f64 {
        self.wifi.iter().map(|use_| use_.throughput_kbps).sum()
    }

    /// Total cellular throughput across apps, in kbps.
    pub fn total_cellular_kbps(&self) -> f64 {
        self.cellular.iter().map(|use_| use_.throughput_kbps).sum()
    }

    /// Whether any component is in use at all (false ⇒ the device could
    /// suspend).
    pub fn is_active(&self) -> bool {
        self.screen.on
            || self.total_cpu() > 0.0
            || self.camera.is_some()
            || !self.audio.is_empty()
            || !self.gps.is_empty()
            || self.total_wifi_kbps() > 0.0
            || self.total_cellular_kbps() > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_is_inactive() {
        assert!(!DeviceUsage::idle().is_active());
    }

    #[test]
    fn screen_on_makes_device_active() {
        let mut usage = DeviceUsage::idle();
        usage.screen = ScreenUsage::on(100, None);
        assert!(usage.is_active());
    }

    #[test]
    fn totals_sum_across_apps() {
        let mut usage = DeviceUsage::idle();
        usage.cpu.push(CpuUse {
            uid: Uid::FIRST_APP,
            utilization: 0.25,
        });
        usage.cpu.push(CpuUse {
            uid: Uid::FIRST_APP.next(),
            utilization: 0.5,
        });
        usage.wifi.push(RadioUse {
            uid: Uid::FIRST_APP,
            throughput_kbps: 300.0,
        });
        assert!((usage.total_cpu() - 0.75).abs() < 1e-12);
        assert!((usage.total_wifi_kbps() - 300.0).abs() < 1e-12);
        assert_eq!(usage.total_cellular_kbps(), 0.0);
    }

    #[test]
    fn default_screen_is_off() {
        assert_eq!(ScreenUsage::default(), ScreenUsage::off());
    }
}
