//! WiFi radio power model with a tail state.
//!
//! Following the power-state-machine line of work (Pathak et al., AppScope),
//! the radio is modelled as three phases: *active* while traffic flows,
//! a fixed-length high-power *tail* after the last packet, and *idle*
//! afterwards. Tail energy is attributed to the apps that caused the last
//! activity — the classic example of energy spent on an app's behalf after
//! its system call returned.

use serde::{Deserialize, Serialize};

use ea_sim::{SimDuration, SimTime, Uid};

use crate::usage::RadioUse;

/// WiFi radio model. Stateful: remembers the last activity instant and the
/// apps responsible, to price and attribute the tail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WifiModel {
    /// Draw while associated but idle, mW (kept by the accounting layer as
    /// unattributed system draw).
    pub idle_mw: f64,
    /// Draw while actively transferring, mW.
    pub active_mw: f64,
    /// Extra draw per Mbps of throughput, mW.
    pub mw_per_mbps: f64,
    /// Draw during the post-transfer tail, mW.
    pub tail_mw: f64,
    /// Tail duration.
    pub tail: SimDuration,
    last_active_at: Option<SimTime>,
    last_users: Vec<Uid>,
}

/// The phase the radio is in at a given instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WifiPhase {
    /// Transferring now.
    Active,
    /// Within the post-transfer tail.
    Tail,
    /// Quiet.
    Idle,
}

impl WifiModel {
    /// A Nexus-4-class 802.11n radio.
    pub fn nexus4() -> Self {
        WifiModel {
            idle_mw: 12.0,
            active_mw: 420.0,
            mw_per_mbps: 28.0,
            tail_mw: 250.0,
            tail: SimDuration::from_millis(600),
            last_active_at: None,
            last_users: Vec::new(),
        }
    }

    /// Observes the interval ending at `now` with the given per-app traffic,
    /// returning `(power_mw, responsible_uids)`. Must be called with
    /// non-decreasing `now`. The returned slice borrows the model's own
    /// last-user record — no per-tick clone.
    pub fn observe(&mut self, now: SimTime, traffic: &[RadioUse]) -> (f64, &[Uid]) {
        let total_kbps: f64 = traffic
            .iter()
            .map(|radio| radio.throughput_kbps.max(0.0))
            .sum();
        if total_kbps > 0.0 {
            self.last_active_at = Some(now);
            self.last_users.clear();
            self.last_users.extend(
                traffic
                    .iter()
                    .filter(|radio| radio.throughput_kbps > 0.0)
                    .map(|radio| radio.uid),
            );
            let power = self.active_mw + self.mw_per_mbps * (total_kbps / 1_000.0);
            return (power, &self.last_users);
        }
        match self.phase(now) {
            WifiPhase::Tail => (self.tail_mw, &self.last_users),
            _ => (self.idle_mw, &[]),
        }
    }

    /// The phase at `now`, without updating state.
    pub fn phase(&self, now: SimTime) -> WifiPhase {
        match self.last_active_at {
            Some(at) if now.saturating_since(at) <= self.tail && now >= at => {
                if now == at {
                    WifiPhase::Active
                } else {
                    WifiPhase::Tail
                }
            }
            _ => WifiPhase::Idle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uid(n: u32) -> Uid {
        Uid::from_raw(10_000 + n)
    }

    fn radio(n: u32, kbps: f64) -> RadioUse {
        RadioUse {
            uid: uid(n),
            throughput_kbps: kbps,
        }
    }

    #[test]
    fn active_power_scales_with_throughput() {
        let mut wifi = WifiModel::nexus4();
        let (slow, _) = wifi.observe(SimTime::ZERO, &[radio(0, 100.0)]);
        let (fast, _) = wifi.observe(SimTime::from_secs(1), &[radio(0, 10_000.0)]);
        assert!(fast > slow);
        assert!(slow >= wifi.active_mw);
    }

    #[test]
    fn tail_follows_activity_then_idles() {
        let mut wifi = WifiModel::nexus4();
        wifi.observe(SimTime::ZERO, &[radio(1, 500.0)]);

        let (tail_power, tail_users) = wifi.observe(SimTime::from_millis(300), &[]);
        assert_eq!(tail_users, vec![uid(1)], "tail charged to last user");
        assert_eq!(tail_power, wifi.tail_mw);

        let (idle_power, idle_users) = wifi.observe(SimTime::from_millis(2_000), &[]);
        assert!(idle_users.is_empty());
        assert_eq!(idle_power, wifi.idle_mw);
    }

    #[test]
    fn idle_before_any_activity() {
        let mut wifi = WifiModel::nexus4();
        let (power, users) = wifi.observe(SimTime::from_secs(5), &[]);
        assert!(users.is_empty());
        assert_eq!(power, wifi.idle_mw);
        assert_eq!(wifi.phase(SimTime::from_secs(5)), WifiPhase::Idle);
    }

    #[test]
    fn multiple_users_share_responsibility() {
        let mut wifi = WifiModel::nexus4();
        let (_, users) = wifi.observe(
            SimTime::ZERO,
            &[radio(1, 100.0), radio(2, 0.0), radio(3, 50.0)],
        );
        assert_eq!(users, vec![uid(1), uid(3)], "zero-traffic apps excluded");
    }

    #[test]
    fn negative_throughput_is_treated_as_zero() {
        let mut wifi = WifiModel::nexus4();
        let (power, users) = wifi.observe(SimTime::ZERO, &[radio(1, -5.0)]);
        assert!(users.is_empty());
        assert_eq!(power, wifi.idle_mw);
    }
}
