//! Property-based tests of the power models and battery.

use ea_power::{
    Battery, CpuModel, CpuUse, DevicePowerModel, DeviceUsage, Energy, RadioUse, ScreenModel,
    ScreenUsage, WifiModel,
};
use ea_sim::{SimDuration, SimTime, Uid};
use proptest::prelude::*;

fn arbitrary_usage() -> impl Strategy<Value = DeviceUsage> {
    (
        proptest::collection::vec((0u32..8, 0.0f64..1.5), 0..6),
        any::<bool>(),
        any::<u8>(),
        proptest::option::of(0u32..8),
        proptest::collection::vec((0u32..8, 0.0f64..5_000.0), 0..4),
    )
        .prop_map(|(cpu, screen_on, brightness, camera, wifi)| {
            let mut usage = DeviceUsage::idle();
            usage.cpu = cpu
                .into_iter()
                .map(|(uid, utilization)| CpuUse {
                    uid: Uid::from_raw(10_000 + uid),
                    utilization,
                })
                .collect();
            usage.screen = if screen_on {
                ScreenUsage::on(brightness, Some(Uid::FIRST_APP))
            } else {
                ScreenUsage::off()
            };
            usage.camera = camera.map(|uid| ea_power::CameraUse {
                uid: Uid::from_raw(10_000 + uid),
                recording: uid % 2 == 0,
            });
            usage.wifi = wifi
                .into_iter()
                .map(|(uid, throughput_kbps)| RadioUse {
                    uid: Uid::from_raw(10_000 + uid),
                    throughput_kbps,
                })
                .collect();
            usage
        })
}

proptest! {
    #[test]
    fn draws_are_nonnegative_and_shares_bounded(usage in arbitrary_usage()) {
        let mut model = DevicePowerModel::nexus4();
        let draws = model.draws(SimTime::ZERO, &usage);
        for draw in &draws {
            prop_assert!(draw.power_mw >= 0.0);
            prop_assert!(draw.attributed() <= 1.0 + 1e-9,
                "{:?} over-attributed: {}", draw.component, draw.attributed());
            for user in &draw.users {
                prop_assert!(user.share >= 0.0);
            }
        }
    }

    #[test]
    fn cpu_power_is_monotone(a in 0.0f64..4.0, b in 0.0f64..4.0) {
        let cpu = CpuModel::nexus4();
        let (low, high) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(cpu.power_mw(low) <= cpu.power_mw(high) + 1e-9);
    }

    #[test]
    fn screen_power_is_monotone_in_brightness(a in 0u8..=255, b in 0u8..=255) {
        let screen = ScreenModel::nexus4();
        let (low, high) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(screen.power_mw(true, low) <= screen.power_mw(true, high) + 1e-9);
    }

    #[test]
    fn battery_partition_invariant(drains in proptest::collection::vec(0.0f64..500.0, 0..60)) {
        let mut battery = Battery::nexus4();
        for joules in drains {
            let _ = battery.drain(Energy::from_joules(joules));
            let drained = battery.drained().as_joules();
            let remaining = battery.remaining().as_joules();
            let capacity = battery.capacity().as_joules();
            prop_assert!((drained + remaining - capacity).abs() < 1e-6);
            prop_assert!((0.0..=100.0).contains(&battery.percent()));
        }
    }

    #[test]
    fn energy_integration_is_additive(power in 0.0f64..2_000.0, a in 1u64..10_000, b in 1u64..10_000) {
        let whole = Energy::from_power(power, SimDuration::from_millis(a + b));
        let parts = Energy::from_power(power, SimDuration::from_millis(a))
            + Energy::from_power(power, SimDuration::from_millis(b));
        prop_assert!((whole.as_joules() - parts.as_joules()).abs() < 1e-9);
    }

    #[test]
    fn wifi_observation_sequence_is_sane(
        steps in proptest::collection::vec((0u64..2_000, 0.0f64..2_000.0), 1..40)
    ) {
        let mut wifi = WifiModel::nexus4();
        let mut now = SimTime::ZERO;
        for (advance, kbps) in steps {
            now += SimDuration::from_millis(advance);
            let traffic = if kbps > 0.0 {
                vec![RadioUse { uid: Uid::FIRST_APP, throughput_kbps: kbps }]
            } else {
                Vec::new()
            };
            let (power, users) = wifi.observe(now, &traffic);
            let users = users.to_vec();
            prop_assert!(power >= wifi.idle_mw - 1e-9);
            if kbps > 0.0 {
                prop_assert_eq!(users, vec![Uid::FIRST_APP]);
                prop_assert!(power >= wifi.active_mw);
            }
        }
    }

    #[test]
    fn suspended_device_draws_only_the_floor_regardless_of_history(
        usage in arbitrary_usage(),
        gap_ms in 100_000u64..1_000_000
    ) {
        let mut model = DevicePowerModel::nexus4();
        model.draws(SimTime::ZERO, &usage);
        // Long after any tail could linger, an idle snapshot suspends.
        let draws = model.draws(SimTime::from_millis(gap_ms), &DeviceUsage::idle());
        let total: f64 = draws.iter().map(|d| d.power_mw).sum();
        prop_assert!((total - model.suspend_mw).abs() < 1e-9);
    }
}
