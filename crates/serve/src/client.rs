//! The query client: one request line in, one response line out, over
//! the service's Unix socket.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

use crate::protocol::Request;

/// Sends one request to the service at `socket` and returns the raw
/// response line (valid JSON, possibly an `{"error": ...}` object).
///
/// A `report` request blocks server-side until the stream drains, so
/// callers should expect it to take as long as the remaining run.
///
/// # Errors
///
/// Connection or I/O failure; also an error when the service closed the
/// connection without responding.
pub fn query(socket: &Path, request: Request) -> std::io::Result<String> {
    let mut stream = UnixStream::connect(socket)?;
    stream.write_all(request.to_line().as_bytes())?;
    stream.write_all(b"\n")?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let read = reader.read_line(&mut line)?;
    if read == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "service closed the connection without responding",
        ));
    }
    Ok(line.trim_end().to_string())
}

/// [`query`], retrying the *connection* while the service is still
/// binding its socket (the races a test or script hits when it starts
/// the service and queries it immediately). Once connected, no retry:
/// a served error is an answer.
///
/// # Errors
///
/// The last connection error once `attempts` are exhausted.
pub fn query_with_retry(
    socket: &Path,
    request: Request,
    attempts: u32,
    delay: Duration,
) -> std::io::Result<String> {
    let mut last = None;
    for attempt in 0..attempts.max(1) {
        match query(socket, request) {
            Ok(reply) => return Ok(reply),
            Err(error) => {
                last = Some(error);
                if attempt + 1 < attempts.max(1) {
                    std::thread::sleep(delay);
                }
            }
        }
    }
    Err(last.unwrap_or_else(|| std::io::Error::other("no connection attempts made")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connecting_to_a_missing_socket_is_an_error() {
        let missing = Path::new("/tmp/ea-serve-test-definitely-missing.sock");
        assert!(query(missing, Request::Ping).is_err());
        assert!(query_with_retry(missing, Request::Ping, 2, Duration::from_millis(1)).is_err());
    }
}
