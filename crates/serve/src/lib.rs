#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Fallible paths must return errors, not panic: unwrap/expect are
// banned outside tests (DESIGN.md §11). Carve-outs need an explicit
// `#[allow]` with a proof of infallibility.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # ea-serve
//!
//! A long-running streaming front end to the `ea-fleet` simulator:
//! simulated devices stream join/checkpoint/outcome events through
//! per-core sharded ingest lanes (bounded SPSC rings) into an
//! incrementally-maintained fleet view — windowed attack-kind
//! prevalence, per-kind collateral energy, streaming drain quantiles —
//! queryable mid-run over a local Unix socket with a line-delimited
//! JSON protocol.
//!
//! The batch path remains the golden oracle: replaying the same fleet
//! seed through the stream produces a [`ea_fleet::FleetReport`]
//! **byte-identical** to `ea_fleet::run_fleet`'s, at any lane count,
//! including under a fault plan. See the [`service`] module docs for
//! the three rules that make that hold.
//!
//! ```
//! use ea_fleet::FleetConfig;
//! use ea_serve::{run_serve, ServeConfig};
//!
//! let config = ServeConfig { lanes: 2, ..ServeConfig::new(FleetConfig::smoke(4, 7)) };
//! let (report, stats) = run_serve(&config, None).unwrap();
//! assert_eq!(report.devices_completed, 4);
//! assert!(stats.checkpoints_ingested > 0);
//!
//! let (batch, _) = ea_fleet::run_fleet(&FleetConfig::smoke(4, 7));
//! assert_eq!(ea_fleet::render::to_json(&batch), ea_fleet::render::to_json(&report));
//! ```

pub mod client;
pub mod protocol;
pub mod ring;
pub mod service;
pub mod view;

pub use client::{query, query_with_retry};
pub use protocol::{Ack, LaneEvent, Request, PONG_SCHEMA, WINDOW_SCHEMA};
pub use service::{run_serve, stats_line, ServeConfig, ServeStats};
pub use view::{FleetView, WindowStats};
