//! Wire types of the streaming service: the in-process lane events the
//! device drivers emit, and the line-delimited JSON request/response
//! protocol the Unix-socket query server speaks.

use ea_fleet::{DeviceCheckpoint, DeviceFailure, DeviceReport};
use serde::{Deserialize, Serialize};

/// Schema tag on every [`crate::WindowStats`] a `window` query returns.
pub const WINDOW_SCHEMA: &str = "ea-serve/window/v1";

/// Schema tag on a `ping` reply.
pub const PONG_SCHEMA: &str = "ea-serve/pong/v1";

/// One event on an ingest lane, emitted by a device-driver thread and
/// consumed by its shard worker. Boxed payloads keep the enum (and so
/// every ring slot) small: most events are a tag plus an index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LaneEvent {
    /// A device came online and started its simulated day.
    Join {
        /// Device index within the fleet.
        index: usize,
    },
    /// A device finished one user session; cumulative progress attached.
    Checkpoint {
        /// Device index within the fleet.
        index: usize,
        /// Progress after the session (cumulative, not a delta).
        snapshot: DeviceCheckpoint,
    },
    /// A device completed its day; the full per-device report.
    Completed(Box<DeviceReport>),
    /// A device was abandoned past its retry budget mid-day.
    Crashed(Box<DeviceFailure>),
    /// A device went offline gracefully (always follows its
    /// [`LaneEvent::Completed`] or [`LaneEvent::Crashed`]).
    Leave {
        /// Device index within the fleet.
        index: usize,
    },
}

impl LaneEvent {
    /// The device index this event concerns.
    #[must_use]
    pub fn index(&self) -> usize {
        match self {
            LaneEvent::Join { index } | LaneEvent::Checkpoint { index, .. } => *index,
            LaneEvent::Completed(report) => report.index,
            LaneEvent::Crashed(failure) => failure.index,
            LaneEvent::Leave { index } => *index,
        }
    }
}

/// One query to the service, a single JSON line on the Unix socket of
/// the form `{"op": "<name>"}`. The wire format is hand-rolled (rather
/// than a serde-tagged enum) so the protocol is nailed down by this
/// file, not by derive-macro behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// The live [`ea_metrics::MetricsSnapshot`] — the same sample the
    /// `--watch` line and heartbeat JSONL render.
    Snapshot,
    /// The current (still-open) ingest window.
    Window,
    /// The final deterministic report; blocks until the stream drains.
    Report,
    /// Stop serving. With `--hold` this is what ends the process.
    Shutdown,
}

impl Request {
    /// Every request, with its wire name.
    const OPS: [(&'static str, Request); 5] = [
        ("ping", Request::Ping),
        ("snapshot", Request::Snapshot),
        ("window", Request::Window),
        ("report", Request::Report),
        ("shutdown", Request::Shutdown),
    ];

    /// The request's wire name.
    #[must_use]
    pub fn op(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Snapshot => "snapshot",
            Request::Window => "window",
            Request::Report => "report",
            Request::Shutdown => "shutdown",
        }
    }

    /// Parses one request line: a JSON object with an `op` field (or,
    /// leniently, the bare op name — handy for `echo snapshot | nc`).
    pub fn parse(line: &str) -> Result<Request, String> {
        let line = line.trim();
        let by_op = |op: &str| {
            Request::OPS
                .iter()
                .find(|(name, _)| *name == op)
                .map(|(_, request)| *request)
                .ok_or_else(|| format!("bad request: unknown op {op:?}"))
        };
        if !line.starts_with('{') {
            return by_op(line.trim_matches('"'));
        }
        let value: serde_json::Value =
            serde_json::from_str(line).map_err(|err| format!("bad request: {err}"))?;
        match &value["op"] {
            serde_json::Value::String(op) => by_op(op),
            _ => Err(String::from("bad request: missing string field \"op\"")),
        }
    }

    /// Serializes the request as one JSON line (no trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        format!("{{\"op\":\"{}\"}}", self.op())
    }
}

/// Reply to a [`Request::Ping`] / [`Request::Shutdown`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ack {
    /// Schema tag ([`PONG_SCHEMA`]).
    pub schema: String,
    /// Always true; errors come back as an `{"error": ...}` object.
    pub ok: bool,
}

impl Ack {
    /// A fresh acknowledgement.
    #[must_use]
    pub fn new() -> Self {
        Ack {
            schema: PONG_SCHEMA.to_string(),
            ok: true,
        }
    }
}

impl Default for Ack {
    fn default() -> Self {
        Ack::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_as_op_tagged_lines() {
        for request in [
            Request::Ping,
            Request::Snapshot,
            Request::Window,
            Request::Report,
            Request::Shutdown,
        ] {
            let line = request.to_line();
            assert!(!line.contains('\n'));
            assert_eq!(Request::parse(&line), Ok(request));
        }
        assert_eq!(
            Request::parse("{\"op\":\"snapshot\"}"),
            Ok(Request::Snapshot)
        );
        assert!(Request::parse("{\"op\":\"nope\"}").is_err());
    }

    #[test]
    fn lane_events_know_their_device() {
        assert_eq!(LaneEvent::Join { index: 3 }.index(), 3);
        assert_eq!(LaneEvent::Leave { index: 9 }.index(), 9);
    }
}
