//! A bounded single-producer/single-consumer ring: the ingest lane
//! between one device-driver thread and one shard worker.
//!
//! The index arithmetic is the classic lock-free SPSC scheme — two
//! monotonically increasing counters, `tail` advanced only by the
//! producer and `head` only by the consumer, so neither side ever
//! contends on the other's counter. Each counter lives on its own
//! cache line, and each handle caches its last view of the *other*
//! side's counter, reloading only when the ring looks full (producer)
//! or empty (consumer) — the steady state runs without cross-core
//! traffic on the indices. The workspace forbids `unsafe`, so slots
//! live behind mutexes instead of `UnsafeCell`s — but *chunked*, 64
//! contiguous slots per lock, not one lock per slot: a batched
//! transfer ([`Producer::push_slice`] / [`Consumer::pop_slice`])
//! acquires one uncontended lock per chunk segment instead of one per
//! item, and the contiguous slot storage keeps the working set at
//! `capacity * size_of::<Option<T>>()` rather than a full cache line
//! per slot. The index protocol guarantees the producer only writes
//! slots in `tail..head+capacity` and the consumer only reads slots in
//! `head..tail`, so the two sides touch disjoint *elements*; they can
//! briefly share the one chunk straddling the head/tail boundary, and
//! the chunk mutex serializes exactly that case.
//!
//! Backpressure is blocking, not lossy: a full ring parks the producer
//! until the consumer frees a slot. The service's conservation
//! invariant ("a completed checkpoint is never dropped") is enforced
//! right here — there is no code path that discards an event.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Pads an atomic counter to its own cache line. `head` and `tail` are
/// each written by exactly one side at high rate; sharing a line would
/// ping-pong it between the two cores on every operation.
#[derive(Debug)]
#[repr(align(64))]
struct CachePadded<T>(T);

/// Slots per chunk mutex: the lock-acquisition granularity of batched
/// transfers. Lanes smaller than this get one chunk spanning the whole
/// ring.
const SLOTS_PER_CHUNK: usize = 64;

/// One lock-protected chunk of contiguous slots.
type Chunk<T> = Mutex<Box<[Option<T>]>>;

/// Shared state of one lane.
#[derive(Debug)]
struct Shared<T> {
    /// Slot `s & mask` holds sequence number `s`; slot `i` lives at
    /// `chunks[i / chunk_size][i % chunk_size]` (both powers of two, so
    /// the split is a shift and a mask). Each chunk is line-padded so
    /// neighbouring chunk *locks* never false-share; the slots inside
    /// stay contiguous.
    chunks: Box<[CachePadded<Chunk<T>>]>,
    /// Slots per chunk; `capacity / chunks.len()`. Power of two.
    chunk_size: usize,
    /// `capacity - 1`; capacity is rounded up to a power of two so the
    /// per-event slot index is a mask, not an integer division.
    mask: usize,
    /// Next sequence number the consumer will read. Monotone.
    head: CachePadded<AtomicUsize>,
    /// Next sequence number the producer will write. Monotone.
    tail: CachePadded<AtomicUsize>,
    /// Set when the producer handle drops: no more items will arrive.
    closed: AtomicBool,
    /// Set when the consumer handle drops: pushes can never complete.
    abandoned: AtomicBool,
}

/// Creates a bounded SPSC lane of at least `capacity` slots (rounded up
/// to the next power of two, minimum 1).
#[must_use]
pub fn lane<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let capacity = capacity.max(1).next_power_of_two();
    let chunk_size = capacity.min(SLOTS_PER_CHUNK);
    let shared = Arc::new(Shared {
        chunks: (0..capacity / chunk_size)
            .map(|_| CachePadded(Mutex::new((0..chunk_size).map(|_| None).collect())))
            .collect(),
        chunk_size,
        mask: capacity - 1,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        closed: AtomicBool::new(false),
        abandoned: AtomicBool::new(false),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
            head_cache: Cell::new(0),
        },
        Consumer {
            shared,
            tail_cache: Cell::new(0),
        },
    )
}

impl<T> Shared<T> {
    /// Chunk index and offset-within-chunk holding sequence number
    /// `seq`. Both divisors are powers of two — a shift and a mask.
    fn locate(&self, seq: usize) -> (usize, usize) {
        let slot = seq & self.mask;
        (slot / self.chunk_size, slot % self.chunk_size)
    }
}

/// Recovers a chunk's contents from a poisoned lock. A chunk mutex is
/// only ever held across plain `Option` reads and writes, which cannot
/// panic, so poison here means some *other* thread died while parked on
/// an unrelated chunk — the stored values are still intact.
fn chunk_guard<T>(chunk: &Chunk<T>) -> std::sync::MutexGuard<'_, Box<[Option<T>]>> {
    chunk
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The write half of a lane, owned by one device-driver thread.
/// Dropping it closes the lane: the consumer drains what remains and
/// then sees end-of-stream.
#[derive(Debug)]
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    /// Last `head` value observed — reloaded from shared state only when
    /// the ring *looks* full, so the steady-state push never touches the
    /// consumer's cache line. (`Cell` makes the handle `!Sync`, which is
    /// exactly the single-producer contract.)
    head_cache: Cell<usize>,
}

impl<T> Producer<T> {
    /// Appends `item`, blocking while the ring is full. Returns the item
    /// back as `Err` only if the consumer is gone, in which case the
    /// lane can never drain.
    pub fn push(&self, item: T) -> Result<(), T> {
        let shared = &self.shared;
        let capacity = shared.mask + 1;
        let seq = shared.tail.0.load(Ordering::Relaxed);
        if seq - self.head_cache.get() >= capacity {
            let mut spins = 0u32;
            loop {
                let head = shared.head.0.load(Ordering::Acquire);
                self.head_cache.set(head);
                if seq - head < capacity {
                    break;
                }
                if shared.abandoned.load(Ordering::Acquire) {
                    return Err(item);
                }
                // Short spin first (the consumer is usually one slot
                // away), then yield so a busy box still makes progress.
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
        let (chunk, within) = shared.locate(seq);
        chunk_guard(&shared.chunks[chunk].0)[within] = Some(item);
        shared.tail.0.store(seq + 1, Ordering::Release);
        Ok(())
    }

    /// Appends every item drained from `items`, blocking while the ring
    /// is full, publishing each burst of writes with **one** release
    /// store on `tail` — the batched counterpart of [`Producer::push`],
    /// which pays an atomic store (and, when the ring looks full, an
    /// acquire reload of `head`) per item. At large transfers this is
    /// what makes the lock-free lane beat a mutex-and-swap queue: the
    /// counter traffic amortizes to one store per *burst*.
    ///
    /// `items` is left empty on success, so callers reuse it as a
    /// staging buffer. Returns `Err(n)` — with the `n` undelivered items
    /// dropped — only if the consumer is gone, in which case the lane
    /// can never drain.
    pub fn push_slice(&self, items: &mut Vec<T>) -> Result<(), usize> {
        let shared = &self.shared;
        let capacity = shared.mask + 1;
        let total = items.len();
        let mut seq = shared.tail.0.load(Ordering::Relaxed);
        let end = seq + total;
        let mut drain = items.drain(..);
        while seq < end {
            let mut free = capacity - (seq - self.head_cache.get()).min(capacity);
            if free == 0 {
                let mut spins = 0u32;
                loop {
                    let head = shared.head.0.load(Ordering::Acquire);
                    self.head_cache.set(head);
                    free = capacity - (seq - head);
                    if free > 0 {
                        break;
                    }
                    if shared.abandoned.load(Ordering::Acquire) {
                        return Err(end - seq);
                    }
                    spins += 1;
                    if spins < 64 {
                        std::hint::spin_loop();
                    } else {
                        std::thread::yield_now();
                    }
                }
            }
            let mut burst = free.min(end - seq);
            // One lock acquisition per chunk segment, not per item.
            while burst > 0 {
                let (chunk, within) = shared.locate(seq);
                let span = burst.min(shared.chunk_size - within);
                let mut guard = chunk_guard(&shared.chunks[chunk].0);
                for (offset, item) in (&mut drain).take(span).enumerate() {
                    guard[within + offset] = Some(item);
                }
                seq += span;
                burst -= span;
            }
            shared.tail.0.store(seq, Ordering::Release);
        }
        Ok(())
    }

    /// Items currently buffered in the lane.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shared
            .tail
            .0
            .load(Ordering::Relaxed)
            .saturating_sub(self.shared.head.0.load(Ordering::Acquire))
    }

    /// Whether the lane is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
    }
}

/// The read half of a lane, owned by one shard worker.
#[derive(Debug)]
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    /// Last `tail` value observed — reloaded from shared state only when
    /// the ring *looks* empty, mirroring the producer's head cache.
    tail_cache: Cell<usize>,
}

impl<T> Consumer<T> {
    /// Takes the next item without blocking; `None` when the ring is
    /// currently empty (which does not mean the stream ended).
    pub fn try_pop(&self) -> Option<T> {
        let shared = &self.shared;
        let seq = shared.head.0.load(Ordering::Relaxed);
        if seq == self.tail_cache.get() {
            let tail = shared.tail.0.load(Ordering::Acquire);
            self.tail_cache.set(tail);
            if seq == tail {
                return None;
            }
        }
        let (chunk, within) = shared.locate(seq);
        let item = chunk_guard(&shared.chunks[chunk].0)[within].take();
        shared.head.0.store(seq + 1, Ordering::Release);
        item
    }

    /// Drains up to `max` buffered items into `out` without blocking,
    /// returning how many were taken. The batched counterpart of
    /// [`Consumer::try_pop`]: the whole burst is claimed with one relaxed
    /// load and released with **one** store on `head`, so at large
    /// transfers the counter traffic amortizes to one atomic per burst.
    pub fn pop_slice(&self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let shared = &self.shared;
        let seq = shared.head.0.load(Ordering::Relaxed);
        let mut tail = self.tail_cache.get();
        if seq == tail {
            tail = shared.tail.0.load(Ordering::Acquire);
            self.tail_cache.set(tail);
            if seq == tail {
                return 0;
            }
        }
        let take = (tail - seq).min(max);
        out.reserve(take);
        let mut cursor = seq;
        // One lock acquisition per chunk segment, not per item.
        while cursor < seq + take {
            let (chunk, within) = shared.locate(cursor);
            let span = (seq + take - cursor).min(shared.chunk_size - within);
            let mut guard = chunk_guard(&shared.chunks[chunk].0);
            for offset in 0..span {
                // The protocol guarantees every claimed slot is occupied;
                // the `if let` is the no-panic spelling of that invariant.
                if let Some(item) = guard[within + offset].take() {
                    out.push(item);
                }
            }
            cursor += span;
        }
        shared.head.0.store(seq + take, Ordering::Release);
        take
    }

    /// Drains up to `max` items into `out`, blocking until at least one
    /// arrives; returns how many were taken, with `0` meaning the
    /// producer closed the lane and everything buffered has drained —
    /// true end-of-stream. The batched counterpart of [`Consumer::recv`].
    pub fn recv_slice(&self, out: &mut Vec<T>, max: usize) -> usize {
        let mut spins = 0u32;
        loop {
            let taken = self.pop_slice(out, max);
            if taken > 0 {
                return taken;
            }
            if self.shared.closed.load(Ordering::Acquire) {
                // Re-check after observing closed: the producer's last
                // push happens-before the close flag.
                return self.pop_slice(out, max);
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Takes the next item, blocking until one arrives; `None` means the
    /// producer closed the lane and every buffered item has been drained
    /// — true end-of-stream.
    pub fn recv(&self) -> Option<T> {
        let mut spins = 0u32;
        loop {
            if let Some(item) = self.try_pop() {
                return Some(item);
            }
            if self.shared.closed.load(Ordering::Acquire) {
                // Re-check after observing closed: the producer's last
                // push happens-before the close flag.
                return self.try_pop();
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.shared.abandoned.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_within_capacity() {
        let (producer, consumer) = lane(4);
        for value in 0..4 {
            assert!(producer.push(value).is_ok());
        }
        assert_eq!(producer.len(), 4);
        for value in 0..4 {
            assert_eq!(consumer.try_pop(), Some(value));
        }
        assert_eq!(consumer.try_pop(), None);
    }

    #[test]
    fn drop_of_producer_ends_the_stream_after_drain() {
        let (producer, consumer) = lane(2);
        producer.push(1).map_err(|_| ()).expect("consumer alive");
        drop(producer);
        assert_eq!(consumer.recv(), Some(1));
        assert_eq!(consumer.recv(), None);
    }

    #[test]
    fn push_fails_once_the_consumer_is_gone() {
        let (producer, consumer) = lane(1);
        producer.push(1).map_err(|_| ()).expect("consumer alive");
        drop(consumer);
        assert_eq!(producer.push(2), Err(2), "ring full, consumer gone");
    }

    #[test]
    fn push_slice_wraps_and_preserves_order() {
        let (producer, consumer) = lane(4);
        // Prime the ring so the batch has to wrap the slot array.
        producer.push(0).map_err(|_| ()).expect("consumer alive");
        producer.push(1).map_err(|_| ()).expect("consumer alive");
        assert_eq!(consumer.try_pop(), Some(0));
        assert_eq!(consumer.try_pop(), Some(1));
        let mut batch = vec![2, 3, 4, 5];
        assert!(producer.push_slice(&mut batch).is_ok());
        assert!(batch.is_empty(), "staging buffer drained");
        let mut out = Vec::new();
        assert_eq!(consumer.pop_slice(&mut out, 16), 4);
        assert_eq!(out, vec![2, 3, 4, 5]);
        assert_eq!(consumer.pop_slice(&mut out, 16), 0);
    }

    #[test]
    fn pop_slice_respects_max() {
        let (producer, consumer) = lane(8);
        let mut batch = (0..6).collect::<Vec<_>>();
        assert!(producer.push_slice(&mut batch).is_ok());
        let mut out = Vec::new();
        assert_eq!(consumer.pop_slice(&mut out, 4), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(consumer.pop_slice(&mut out, 4), 2);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(consumer.pop_slice(&mut out, 0), 0, "max of zero is a no-op");
    }

    #[test]
    fn push_slice_fails_once_the_consumer_is_gone() {
        let (producer, consumer) = lane(2);
        drop(consumer);
        let mut batch = vec![1, 2, 3, 4];
        assert_eq!(
            producer.push_slice(&mut batch),
            Err(2),
            "two fit in the ring, two can never be delivered"
        );
    }

    #[test]
    fn recv_slice_drains_then_sees_end_of_stream() {
        let (producer, consumer) = lane(4);
        let mut batch = vec![7, 8];
        assert!(producer.push_slice(&mut batch).is_ok());
        drop(producer);
        let mut out = Vec::new();
        assert_eq!(consumer.recv_slice(&mut out, 16), 2);
        assert_eq!(out, vec![7, 8]);
        assert_eq!(consumer.recv_slice(&mut out, 16), 0, "end of stream");
    }

    #[test]
    fn batched_cross_thread_transfer_is_lossless_and_ordered() {
        const COUNT: usize = 16_384;
        const BURST: usize = 64;
        let (producer, consumer) = lane(256);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                let mut staging = Vec::with_capacity(BURST);
                for value in 0..COUNT {
                    staging.push(value);
                    if staging.len() == BURST {
                        producer
                            .push_slice(&mut staging)
                            .map_err(|_| ())
                            .expect("consumer alive");
                    }
                }
            });
            let mut seen = Vec::with_capacity(COUNT);
            let mut burst = Vec::with_capacity(BURST);
            loop {
                let taken = consumer.recv_slice(&mut burst, BURST);
                if taken == 0 {
                    break;
                }
                seen.append(&mut burst);
            }
            assert_eq!(seen, (0..COUNT).collect::<Vec<_>>());
        });
    }

    #[test]
    fn cross_thread_transfer_is_lossless_and_ordered() {
        const COUNT: usize = 10_000;
        let (producer, consumer) = lane(8);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for value in 0..COUNT {
                    producer
                        .push(value)
                        .map_err(|_| ())
                        .expect("consumer alive");
                }
            });
            let mut seen = Vec::with_capacity(COUNT);
            while let Some(value) = consumer.recv() {
                seen.push(value);
            }
            assert_eq!(seen, (0..COUNT).collect::<Vec<_>>());
        });
    }
}
