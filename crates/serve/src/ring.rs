//! A bounded single-producer/single-consumer ring: the ingest lane
//! between one device-driver thread and one shard worker.
//!
//! The index arithmetic is the classic lock-free SPSC scheme — two
//! monotonically increasing counters, `tail` advanced only by the
//! producer and `head` only by the consumer, so neither side ever
//! contends on the other's counter. Each counter lives on its own
//! cache line, and each handle caches its last view of the *other*
//! side's counter, reloading only when the ring looks full (producer)
//! or empty (consumer) — the steady state runs without cross-core
//! traffic on the indices. The workspace forbids `unsafe`, so
//! each slot is a `Mutex<Option<T>>` instead of an `UnsafeCell`; the
//! protocol guarantees a slot is touched by exactly one side at a time
//! (the producer only writes slots in `tail..head+capacity`, the
//! consumer only reads slots in `head..tail`), which makes every slot
//! lock uncontended — it costs one atomic exchange, not a wait.
//!
//! Backpressure is blocking, not lossy: a full ring parks the producer
//! until the consumer frees a slot. The service's conservation
//! invariant ("a completed checkpoint is never dropped") is enforced
//! right here — there is no code path that discards an event.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Pads an atomic counter to its own cache line. `head` and `tail` are
/// each written by exactly one side at high rate; sharing a line would
/// ping-pong it between the two cores on every operation.
#[derive(Debug)]
#[repr(align(64))]
struct CachePadded<T>(T);

/// Shared state of one lane.
#[derive(Debug)]
struct Shared<T> {
    /// Slot `i` holds the item for sequence numbers `s` with
    /// `s & mask == i`. Slots are line-padded too: producer and
    /// consumer run in lock-step one slot apart, so unpadded neighbours
    /// would false-share almost every transfer.
    slots: Box<[CachePadded<Mutex<Option<T>>>]>,
    /// `capacity - 1`; capacity is rounded up to a power of two so the
    /// per-event slot index is a mask, not an integer division.
    mask: usize,
    /// Next sequence number the consumer will read. Monotone.
    head: CachePadded<AtomicUsize>,
    /// Next sequence number the producer will write. Monotone.
    tail: CachePadded<AtomicUsize>,
    /// Set when the producer handle drops: no more items will arrive.
    closed: AtomicBool,
    /// Set when the consumer handle drops: pushes can never complete.
    abandoned: AtomicBool,
}

/// Creates a bounded SPSC lane of at least `capacity` slots (rounded up
/// to the next power of two, minimum 1).
#[must_use]
pub fn lane<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let capacity = capacity.max(1).next_power_of_two();
    let shared = Arc::new(Shared {
        slots: (0..capacity)
            .map(|_| CachePadded(Mutex::new(None)))
            .collect(),
        mask: capacity - 1,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        closed: AtomicBool::new(false),
        abandoned: AtomicBool::new(false),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
            head_cache: Cell::new(0),
        },
        Consumer {
            shared,
            tail_cache: Cell::new(0),
        },
    )
}

/// Recovers a slot's contents from a poisoned lock. A slot mutex is
/// only ever held across a plain `Option` read or write, which cannot
/// panic, so poison here means some *other* thread died while parked on
/// an unrelated slot — the stored value is still intact.
fn slot_guard<T>(slot: &Mutex<Option<T>>) -> std::sync::MutexGuard<'_, Option<T>> {
    slot.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The write half of a lane, owned by one device-driver thread.
/// Dropping it closes the lane: the consumer drains what remains and
/// then sees end-of-stream.
#[derive(Debug)]
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    /// Last `head` value observed — reloaded from shared state only when
    /// the ring *looks* full, so the steady-state push never touches the
    /// consumer's cache line. (`Cell` makes the handle `!Sync`, which is
    /// exactly the single-producer contract.)
    head_cache: Cell<usize>,
}

impl<T> Producer<T> {
    /// Appends `item`, blocking while the ring is full. Returns the item
    /// back as `Err` only if the consumer is gone, in which case the
    /// lane can never drain.
    pub fn push(&self, item: T) -> Result<(), T> {
        let shared = &self.shared;
        let capacity = shared.slots.len();
        let seq = shared.tail.0.load(Ordering::Relaxed);
        if seq - self.head_cache.get() >= capacity {
            let mut spins = 0u32;
            loop {
                let head = shared.head.0.load(Ordering::Acquire);
                self.head_cache.set(head);
                if seq - head < capacity {
                    break;
                }
                if shared.abandoned.load(Ordering::Acquire) {
                    return Err(item);
                }
                // Short spin first (the consumer is usually one slot
                // away), then yield so a busy box still makes progress.
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
        *slot_guard(&shared.slots[seq & shared.mask].0) = Some(item);
        shared.tail.0.store(seq + 1, Ordering::Release);
        Ok(())
    }

    /// Items currently buffered in the lane.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shared
            .tail
            .0
            .load(Ordering::Relaxed)
            .saturating_sub(self.shared.head.0.load(Ordering::Acquire))
    }

    /// Whether the lane is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
    }
}

/// The read half of a lane, owned by one shard worker.
#[derive(Debug)]
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    /// Last `tail` value observed — reloaded from shared state only when
    /// the ring *looks* empty, mirroring the producer's head cache.
    tail_cache: Cell<usize>,
}

impl<T> Consumer<T> {
    /// Takes the next item without blocking; `None` when the ring is
    /// currently empty (which does not mean the stream ended).
    pub fn try_pop(&self) -> Option<T> {
        let shared = &self.shared;
        let seq = shared.head.0.load(Ordering::Relaxed);
        if seq == self.tail_cache.get() {
            let tail = shared.tail.0.load(Ordering::Acquire);
            self.tail_cache.set(tail);
            if seq == tail {
                return None;
            }
        }
        let item = slot_guard(&shared.slots[seq & shared.mask].0).take();
        shared.head.0.store(seq + 1, Ordering::Release);
        item
    }

    /// Takes the next item, blocking until one arrives; `None` means the
    /// producer closed the lane and every buffered item has been drained
    /// — true end-of-stream.
    pub fn recv(&self) -> Option<T> {
        let mut spins = 0u32;
        loop {
            if let Some(item) = self.try_pop() {
                return Some(item);
            }
            if self.shared.closed.load(Ordering::Acquire) {
                // Re-check after observing closed: the producer's last
                // push happens-before the close flag.
                return self.try_pop();
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.shared.abandoned.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_within_capacity() {
        let (producer, consumer) = lane(4);
        for value in 0..4 {
            assert!(producer.push(value).is_ok());
        }
        assert_eq!(producer.len(), 4);
        for value in 0..4 {
            assert_eq!(consumer.try_pop(), Some(value));
        }
        assert_eq!(consumer.try_pop(), None);
    }

    #[test]
    fn drop_of_producer_ends_the_stream_after_drain() {
        let (producer, consumer) = lane(2);
        producer.push(1).map_err(|_| ()).expect("consumer alive");
        drop(producer);
        assert_eq!(consumer.recv(), Some(1));
        assert_eq!(consumer.recv(), None);
    }

    #[test]
    fn push_fails_once_the_consumer_is_gone() {
        let (producer, consumer) = lane(1);
        producer.push(1).map_err(|_| ()).expect("consumer alive");
        drop(consumer);
        assert_eq!(producer.push(2), Err(2), "ring full, consumer gone");
    }

    #[test]
    fn cross_thread_transfer_is_lossless_and_ordered() {
        const COUNT: usize = 10_000;
        let (producer, consumer) = lane(8);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for value in 0..COUNT {
                    producer
                        .push(value)
                        .map_err(|_| ())
                        .expect("consumer alive");
                }
            });
            let mut seen = Vec::with_capacity(COUNT);
            while let Some(value) = consumer.recv() {
                seen.push(value);
            }
            assert_eq!(seen, (0..COUNT).collect::<Vec<_>>());
        });
    }
}
