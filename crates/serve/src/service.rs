//! The streaming fleet ingest service.
//!
//! ## Shape
//!
//! ```text
//! driver 0 ──SPSC──▶ shard worker 0 ──┐
//! driver 1 ──SPSC──▶ shard worker 1 ──┼─▶ FleetView (windows + slots)
//! driver L ──SPSC──▶ shard worker L ──┘      ▲
//!                                            │ snapshot/window/report
//!                    Unix socket server ─────┘   (line-delimited JSON)
//! ```
//!
//! Each *lane* is one bounded SPSC ring with one producer (a device
//! driver simulating the devices `index ≡ lane (mod lanes)`, under the
//! shared `ea-fleet` supervisor: retries, checkpoint salvage, chaos
//! panics) and one consumer (a shard worker folding events into the
//! shared [`FleetView`] and its own per-shard accumulator).
//!
//! ## Determinism
//!
//! The streamed [`FleetReport`] is **byte-identical** to the batch
//! engine's at any lane count, including under fault plans. Three rules
//! make that true:
//!
//! 1. per-device outcomes land in an index-keyed slot table and are
//!    folded in index order through the same
//!    [`ea_fleet::ReportFold`]-backed [`ea_fleet::aggregate`] the batch
//!    path uses (floating-point sums are order-sensitive; arrival order
//!    is not reproducible, index order is);
//! 2. per-shard drain sketches merge commutatively (integer bins), so
//!    shard scheduling cannot change the quantiles;
//! 3. supervision tallies are plain integer sums.
//!
//! Everything else the service maintains — windows, live prevalence,
//! snapshots — is observability and never feeds the report.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ea_corpus::{generate_corpus, CorpusConfig};
use ea_fleet::supervise::{install_quiet_hook, QuietPanicsGuard};
use ea_fleet::{aggregate, FleetConfig, FleetReport, SuperviseHooks, Supervision};
use ea_metrics::{FleetObservatory, FlightRecorder, QuantileSketch, SnapshotEmitter};

use crate::protocol::{Ack, LaneEvent, Request};
use crate::ring;
use crate::view::FleetView;

/// Events a shard worker drains from its lane per burst: one head-counter
/// store and one view lock amortize over up to this many events. Sized to
/// a fraction of the default ring so a burst never starves the producer.
const INGEST_BURST: usize = 64;

/// Configuration of one service run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The simulated fleet (sizes, seeds, faults, retry budget — the
    /// full batch-engine configuration, reused verbatim so the stream
    /// replays the exact same fleet).
    pub fleet: FleetConfig,
    /// Ingest lanes (driver/worker pairs); `0` means one per core.
    pub lanes: usize,
    /// Slots per SPSC ring. The default (1024) sits past the measured
    /// throughput knee — smaller rings keep the producer in its blocked
    /// path; growing past this buys nothing (see `serve_ingest` in the
    /// hotloop bench).
    pub ring_capacity: usize,
    /// Lane events per ingest window before it rolls.
    pub window_events: u64,
    /// Unix-socket path for snapshot queries; `None` disables the
    /// query server.
    pub socket: Option<PathBuf>,
    /// Keep serving queries after the stream drains, until a `shutdown`
    /// request arrives.
    pub hold: bool,
}

impl ServeConfig {
    /// A service over the given fleet with default lane sizing.
    #[must_use]
    pub fn new(fleet: FleetConfig) -> Self {
        ServeConfig {
            fleet,
            lanes: 0,
            ring_capacity: 1024,
            window_events: 64,
            socket: None,
            hold: false,
        }
    }

    /// The lane count this run will actually use.
    #[must_use]
    pub fn effective_lanes(&self) -> usize {
        let lanes = match self.lanes {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        };
        lanes.max(1).min(self.fleet.size.max(1))
    }
}

/// Wall-clock facts about one service run; deliberately not part of the
/// deterministic report, like [`ea_fleet::FleetRunStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStats {
    /// Ingest lanes used.
    pub lanes: usize,
    /// End-to-end wall time, milliseconds.
    pub wall_ms: f64,
    /// Lane events ingested across every shard.
    pub events_ingested: u64,
    /// Session checkpoints among those events.
    pub checkpoints_ingested: u64,
    /// Socket queries answered.
    pub queries_served: u64,
}

/// Locks a mutex, recovering the data from a poisoned lock (supervised
/// panics are already accounted; shared state stays the source of
/// truth).
fn lock_clean<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// What one shard worker accumulates locally, merged into the run-wide
/// state when its lane drains. Only commutative pieces live here — the
/// sketch's integer bins merge in any order without changing a byte.
#[derive(Debug, Default)]
struct ShardAccumulator {
    drains: QuantileSketch,
    events: u64,
    checkpoints: u64,
}

/// Shared state the query server hands each connection.
#[derive(Clone, Copy)]
struct ServerShared<'a> {
    observatory: &'a FleetObservatory,
    view: &'a Mutex<FleetView>,
    report_json: &'a Mutex<Option<String>>,
    report_ready: &'a Condvar,
    stop: &'a AtomicBool,
    queries: &'a AtomicU64,
}

/// Runs the streaming service to completion: streams the configured
/// fleet through the ingest lanes, serves queries while it runs, and
/// returns the drained deterministic report plus wall-clock stats.
///
/// `emitter` (when enabled) receives an observatory snapshot roughly
/// every 250 ms and one final sample — the same snapshots the socket's
/// `snapshot` query serves.
///
/// # Errors
///
/// Only socket setup can fail (bind/permissions); the simulation itself
/// converts per-device panics into report entries.
pub fn run_serve(
    config: &ServeConfig,
    emitter: Option<&SnapshotEmitter<'_>>,
) -> std::io::Result<(FleetReport, ServeStats)> {
    install_quiet_hook();
    let started = Instant::now();

    let corpus = generate_corpus(
        &CorpusConfig {
            size: config.fleet.corpus_size,
            ..CorpusConfig::paper()
        },
        config.fleet.corpus_seed,
    );

    let size = config.fleet.size;
    let lanes = config.effective_lanes();

    let listener = match &config.socket {
        Some(path) => {
            // A stale socket file from a previous run would fail the
            // bind; the file is meaningless without its listener.
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            Some(listener)
        }
        None => None,
    };

    let observatory = FleetObservatory::new(size, lanes);
    let view = Mutex::new(FleetView::new(size, config.window_events));
    let supervision = Mutex::new(Supervision::default());
    let merged_sketch = Mutex::new(QuantileSketch::default());
    let events_ingested = AtomicU64::new(0);
    let checkpoints_ingested = AtomicU64::new(0);
    let queries = AtomicU64::new(0);
    let report_json: Mutex<Option<String>> = Mutex::new(None);
    let report_ready = Condvar::new();
    let stop = AtomicBool::new(false);
    let stream_done = AtomicBool::new(false);

    let report = std::thread::scope(|scope| {
        let mut worker_handles = Vec::with_capacity(lanes);
        for lane_id in 0..lanes {
            let (producer, consumer) = ring::lane(config.ring_capacity);
            let corpus = &corpus;
            let observatory = &observatory;
            let supervision = &supervision;
            let fleet = &config.fleet;
            let view = &view;
            let merged_sketch = &merged_sketch;
            let events_ingested = &events_ingested;
            let checkpoints_ingested = &checkpoints_ingested;

            // Device driver: the lane's single producer.
            scope.spawn(move || {
                let _quiet = QuietPanicsGuard::enter();
                let mut tally = Supervision::default();
                let flight = (fleet.flight_recorder > 0)
                    .then(|| Arc::new(FlightRecorder::new(fleet.flight_recorder)));
                // One intent-log mirror per lane, reset per attempt by the
                // shared supervisor — crashed devices stream their replay
                // bundle through `LaneEvent::Crashed` like the batch path.
                let intents = (!fleet.reference_lifecycle).then(|| {
                    Arc::new(ea_framework::IntentLogRecorder::new(
                        ea_framework::INTENT_LOG_CAPACITY,
                    ))
                });
                for index in (lane_id..size).step_by(lanes) {
                    if producer.push(LaneEvent::Join { index }).is_err() {
                        break; // shard worker died: lane can never drain
                    }
                    let device_started = Instant::now();
                    let on_checkpoint = |snapshot| {
                        let _ = producer.push(LaneEvent::Checkpoint { index, snapshot });
                    };
                    let hooks = SuperviseHooks {
                        flight: flight.as_ref(),
                        observatory: Some(observatory),
                        on_checkpoint: Some(&on_checkpoint),
                        intents: intents.as_ref(),
                    };
                    let outcome = ea_fleet::supervise::supervise_device(
                        fleet, corpus, index, &mut tally, &hooks,
                    );
                    observatory.worker_busy_add(
                        lane_id,
                        (device_started.elapsed().as_secs_f64() * 1e6) as u64,
                    );
                    let event = match outcome {
                        Ok(report) => LaneEvent::Completed(Box::new(report)),
                        Err(failure) => LaneEvent::Crashed(Box::new(failure)),
                    };
                    if producer.push(event).is_err() {
                        break;
                    }
                    if producer.push(LaneEvent::Leave { index }).is_err() {
                        break;
                    }
                }
                lock_clean(supervision).merge(&tally);
                // Dropping the producer closes the lane.
            });

            // Shard worker: the lane's single consumer. Events drain in
            // bursts — one head-counter store and one view lock per
            // burst instead of per event — which is what keeps a busy
            // lane's ingest cost amortized (see `ring::Consumer::
            // recv_slice` and the `serve_ingest` bench rows).
            worker_handles.push(scope.spawn(move || {
                let mut local = ShardAccumulator::default();
                let mut burst = Vec::with_capacity(INGEST_BURST);
                while consumer.recv_slice(&mut burst, INGEST_BURST) > 0 {
                    let mut guard = lock_clean(view);
                    for event in burst.drain(..) {
                        local.events += 1;
                        match &event {
                            LaneEvent::Checkpoint { .. } => local.checkpoints += 1,
                            LaneEvent::Completed(report) => {
                                local.drains.record(report.drained_joules);
                                observatory.device_completed(report.drained_joules);
                            }
                            LaneEvent::Crashed(_) => observatory.device_failed(),
                            LaneEvent::Join { .. } | LaneEvent::Leave { .. } => {}
                        }
                        guard.ingest(event);
                    }
                }
                lock_clean(merged_sketch).merge(&local.drains);
                events_ingested.fetch_add(local.events, Ordering::Relaxed);
                checkpoints_ingested.fetch_add(local.checkpoints, Ordering::Relaxed);
            }));
        }

        // Query server: poll-accept so the loop can notice the stop flag.
        if let Some(listener) = &listener {
            let shared = ServerShared {
                observatory: &observatory,
                view: &view,
                report_json: &report_json,
                report_ready: &report_ready,
                stop: &stop,
                queries: &queries,
            };
            let stop = &stop;
            scope.spawn(move || loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        scope.spawn(move || serve_connection(stream, &shared));
                    }
                    Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => break,
                }
            });
        }

        // Live sampler for --watch / --heartbeat.
        if emitter.is_some_and(SnapshotEmitter::enabled) {
            let observatory = &observatory;
            let stream_done = &stream_done;
            scope.spawn(move || {
                while !stream_done.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(250));
                    if stream_done.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Some(emitter) = emitter {
                        emitter.emit(&observatory.snapshot(), false);
                    }
                }
            });
        }

        // Drain: every lane closed and every buffered event ingested.
        for handle in worker_handles {
            let _ = handle.join();
        }
        stream_done.store(true, Ordering::Relaxed);

        // The deterministic fold: outcomes in index order through the
        // shared ReportFold, sketch merged commutatively, supervision
        // summed — the exact batch-engine recipe. The view keeps its
        // windows and totals so a held service still answers `window`.
        let outcomes = lock_clean(&view).take_outcomes();
        let health = lock_clean(&supervision).clone().health();
        let sketch = lock_clean(&merged_sketch).clone();
        let report = aggregate(&config.fleet, outcomes, health, Some(sketch));

        // Publish the report to any (present or future) `report` query.
        {
            let mut slot = lock_clean(&report_json);
            *slot = Some(compact_report_json(&report));
            report_ready.notify_all();
        }

        if listener.is_some() && config.hold {
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(10));
            }
        } else {
            stop.store(true, Ordering::Relaxed);
        }
        report
    });

    if let Some(emitter) = emitter {
        emitter.emit(&observatory.snapshot(), true);
    }
    if let Some(path) = &config.socket {
        let _ = std::fs::remove_file(path);
    }

    let stats = ServeStats {
        lanes,
        wall_ms: started.elapsed().as_secs_f64() * 1_000.0,
        events_ingested: events_ingested.load(Ordering::Relaxed),
        checkpoints_ingested: checkpoints_ingested.load(Ordering::Relaxed),
        queries_served: queries.load(Ordering::Relaxed),
    };
    Ok((report, stats))
}

/// One-line human summary of a service run, for stderr.
#[must_use]
pub fn stats_line(stats: &ServeStats) -> String {
    format!(
        "serve: {} lanes, {} events ({} checkpoints) ingested, {} queries, {:.0} ms",
        stats.lanes,
        stats.events_ingested,
        stats.checkpoints_ingested,
        stats.queries_served,
        stats.wall_ms,
    )
}

/// Compact single-line JSON of the final report (the `report` query's
/// wire form; the pretty rendering stays on the CLI).
fn compact_report_json(report: &FleetReport) -> String {
    serde_json::to_string(report)
        .unwrap_or_else(|err| format!("{{\"error\":\"report failed to serialize: {err}\"}}"))
}

/// Serves one socket connection: line-delimited JSON requests, one JSON
/// line per response.
fn serve_connection(stream: UnixStream, shared: &ServerShared<'_>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = write_half;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let parsed = Request::parse(&line);
        let reply = match parsed {
            Ok(request) => {
                shared.queries.fetch_add(1, Ordering::Relaxed);
                respond(request, shared)
            }
            Err(ref message) => format!("{{\"error\":{}}}", quote_json(message)),
        };
        if writeln!(writer, "{reply}").is_err() {
            break;
        }
        if parsed == Ok(Request::Shutdown) {
            break;
        }
    }
}

/// Computes the response line for one parsed request.
fn respond(request: Request, shared: &ServerShared<'_>) -> String {
    match request {
        Request::Ping => {
            serde_json::to_string(&Ack::new()).unwrap_or_else(|_| String::from("{\"ok\":true}"))
        }
        Request::Snapshot => shared.observatory.snapshot().to_jsonl(),
        Request::Window => {
            let window = lock_clean(shared.view).window();
            serde_json::to_string(&window)
                .unwrap_or_else(|err| format!("{{\"error\":\"window: {err}\"}}"))
        }
        Request::Report => {
            let mut guard = lock_clean(shared.report_json);
            loop {
                if let Some(json) = guard.as_ref() {
                    return json.clone();
                }
                guard = shared
                    .report_ready
                    .wait(guard)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
        Request::Shutdown => {
            shared.stop.store(true, Ordering::Relaxed);
            serde_json::to_string(&Ack::new()).unwrap_or_else(|_| String::from("{\"ok\":true}"))
        }
    }
}

/// JSON-quotes an error message.
fn quote_json(message: &str) -> String {
    serde_json::to_string(message).unwrap_or_else(|_| String::from("\"bad request\""))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ea_fleet::run_fleet;

    #[test]
    fn stream_replay_matches_batch_bytes() {
        let fleet = FleetConfig::smoke(6, 91);
        let (batch, _) = run_fleet(&fleet);
        for lanes in [1, 3] {
            let config = ServeConfig {
                lanes,
                ..ServeConfig::new(fleet.clone())
            };
            let (streamed, stats) = run_serve(&config, None).expect("no socket: cannot fail");
            assert_eq!(
                ea_fleet::render::to_json(&batch),
                ea_fleet::render::to_json(&streamed),
                "lane count {lanes} changed the report"
            );
            assert_eq!(stats.lanes, lanes);
            // join + N checkpoints + outcome + leave per device.
            assert!(stats.events_ingested >= (3 * fleet.size) as u64);
            assert!(stats.checkpoints_ingested > 0);
        }
    }

    #[test]
    fn crashed_devices_flow_through_the_stream() {
        let fleet = FleetConfig {
            panic_devices: vec![1],
            max_retries: 1,
            ..FleetConfig::smoke(4, 17)
        };
        let config = ServeConfig {
            lanes: 2,
            ..ServeConfig::new(fleet.clone())
        };
        let (streamed, _) = run_serve(&config, None).expect("no socket: cannot fail");
        let (batch, _) = run_fleet(&fleet);
        assert_eq!(streamed.failures.len(), 1);
        assert_eq!(streamed.failures[0].index, 1);
        assert_eq!(
            ea_fleet::render::to_json(&batch),
            ea_fleet::render::to_json(&streamed)
        );
    }
}
