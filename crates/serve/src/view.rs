//! The incrementally-maintained fleet view: windowed online aggregation
//! over the ingest stream, plus the index-keyed outcome table the final
//! report is folded from.
//!
//! The view answers *live* questions — what attack kinds are prevalent
//! in the current ingest window, how much collateral energy they cost,
//! how the drain distribution looks so far — while carefully staying out
//! of the deterministic report's way: the final [`ea_fleet::FleetReport`]
//! is produced by re-folding the outcome slots in device-index order
//! through the same [`ea_fleet::ReportFold`] the batch engine uses,
//! never from the window counters.

use std::collections::BTreeMap;

use ea_fleet::{DeviceFailure, DeviceReport, SlotArena};
use ea_metrics::QuantileSketch;
use serde::{Deserialize, Serialize};

use crate::protocol::{LaneEvent, WINDOW_SCHEMA};

/// One online device's live row. Rows live in arena slots: a `Leave`
/// retires the slot and the next `Join` recycles it, so the roster's
/// footprint is bounded by *peak concurrency*, not fleet size.
#[derive(Debug, Clone, Default)]
struct LiveDevice {
    /// Device index within the fleet.
    index: usize,
    /// Session checkpoints seen since this device joined.
    checkpoints: u64,
    /// Cumulative battery drain from the latest checkpoint, joules.
    drained_joules: f64,
}

/// One ingest window's aggregates, plus stream-lifetime totals — the
/// reply to a `window` query (schema [`WINDOW_SCHEMA`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowStats {
    /// Schema tag ([`WINDOW_SCHEMA`]).
    pub schema: String,
    /// Window sequence number, starting at 1. The current (still open)
    /// window keeps its number until it rolls.
    pub window_seq: u64,
    /// Whether this window is still accumulating events.
    pub open: bool,
    /// Lane events ingested in this window.
    pub events: u64,
    /// Session checkpoints ingested in this window.
    pub checkpoints: u64,
    /// Devices that joined in this window.
    pub joined: u64,
    /// Devices that left gracefully in this window.
    pub left: u64,
    /// Devices abandoned mid-day in this window.
    pub crashed: u64,
    /// Crashed devices whose failure carried a lifecycle intent-log
    /// tail — i.e. whose forensics bundle is complete and replayable
    /// with `eandroid replay`. Equals `crashed` on the default reducer
    /// lifecycle path; zero under `--reference-lifecycle`.
    #[serde(default)]
    pub crashed_replayable: u64,
    /// Devices that completed their day in this window.
    pub completed: u64,
    /// Battery energy drained by devices completing in this window, J.
    pub drained_joules: f64,
    /// Collateral energy attributed to attack kinds in this window, J.
    /// The windowed conservation invariant: never exceeds
    /// `drained_joules`.
    pub attributed_joules: f64,
    /// Devices per attack kind among this window's completions.
    pub prevalence: BTreeMap<String, u64>,
    /// Collateral energy per attack kind in this window, joules.
    pub collateral_by_kind: BTreeMap<String, f64>,
    /// Median drain among this window's completions, joules.
    pub drain_p50_joules: f64,
    /// 90th-percentile drain among this window's completions, joules.
    pub drain_p90_joules: f64,
    /// 99th-percentile drain among this window's completions, joules.
    pub drain_p99_joules: f64,
    /// Lane events ingested over the whole stream so far.
    pub total_events: u64,
    /// Checkpoints ingested over the whole stream so far.
    pub total_checkpoints: u64,
    /// Devices currently online (joined and not yet left).
    pub devices_online: u64,
}

/// Accumulator behind the current window.
#[derive(Debug, Default)]
struct WindowAccum {
    events: u64,
    checkpoints: u64,
    joined: u64,
    left: u64,
    crashed: u64,
    crashed_replayable: u64,
    completed: u64,
    drained_joules: f64,
    attributed_joules: f64,
    prevalence: BTreeMap<String, u64>,
    collateral_by_kind: BTreeMap<String, f64>,
    drains: QuantileSketch,
}

impl WindowAccum {
    fn render(&self, seq: u64, open: bool, view: &FleetView) -> WindowStats {
        WindowStats {
            schema: WINDOW_SCHEMA.to_string(),
            window_seq: seq,
            open,
            events: self.events,
            checkpoints: self.checkpoints,
            joined: self.joined,
            left: self.left,
            crashed: self.crashed,
            crashed_replayable: self.crashed_replayable,
            completed: self.completed,
            drained_joules: self.drained_joules,
            attributed_joules: self.attributed_joules,
            prevalence: self.prevalence.clone(),
            collateral_by_kind: self.collateral_by_kind.clone(),
            drain_p50_joules: self.drains.quantile(0.50),
            drain_p90_joules: self.drains.quantile(0.90),
            drain_p99_joules: self.drains.quantile(0.99),
            total_events: view.total_events,
            total_checkpoints: view.total_checkpoints,
            devices_online: view.devices_online,
        }
    }
}

/// The live fleet view one service run maintains: the open ingest
/// window, the last closed one, stream totals, and the outcome slots.
#[derive(Debug)]
pub struct FleetView {
    /// Events per window before it rolls.
    window_capacity: u64,
    window_seq: u64,
    current: WindowAccum,
    last_closed: Option<WindowStats>,
    total_events: u64,
    total_checkpoints: u64,
    total_replayable_crashes: u64,
    devices_online: u64,
    /// Device outcomes keyed by index — the final report folds these in
    /// index order, which is what keeps the streaming report
    /// byte-identical to the batch one.
    slots: Vec<Option<Result<DeviceReport, DeviceFailure>>>,
    /// Slot allocator for the live roster: join = spawn, leave = retire.
    roster_arena: SlotArena,
    /// Arena-slot-indexed live rows; retired rows keep their storage for
    /// the next joiner.
    roster: Vec<LiveDevice>,
    /// Device index → roster arena slot, for checkpoint/leave routing.
    roster_by_index: BTreeMap<usize, usize>,
}

impl FleetView {
    /// A view for a fleet of `size` devices, rolling windows every
    /// `window_capacity` events (at least 1).
    #[must_use]
    pub fn new(size: usize, window_capacity: u64) -> Self {
        FleetView {
            window_capacity: window_capacity.max(1),
            window_seq: 1,
            current: WindowAccum::default(),
            last_closed: None,
            total_events: 0,
            total_checkpoints: 0,
            total_replayable_crashes: 0,
            devices_online: 0,
            slots: (0..size).map(|_| None).collect(),
            roster_arena: SlotArena::new(),
            roster: Vec::new(),
            roster_by_index: BTreeMap::new(),
        }
    }

    /// Enrolls a joining device in the live roster: an arena index grab,
    /// recycling a leaver's row when one is free.
    fn roster_join(&mut self, index: usize) {
        let slot = self.roster_arena.spawn().index();
        if slot == self.roster.len() {
            self.roster.push(LiveDevice::default());
        }
        self.roster[slot] = LiveDevice {
            index,
            checkpoints: 0,
            drained_joules: 0.0,
        };
        self.roster_by_index.insert(index, slot);
    }

    /// Folds one lane event into the view.
    pub fn ingest(&mut self, event: LaneEvent) {
        self.total_events += 1;
        self.current.events += 1;
        match event {
            LaneEvent::Join { index } => {
                self.current.joined += 1;
                self.devices_online += 1;
                self.roster_join(index);
            }
            LaneEvent::Checkpoint {
                index,
                ref snapshot,
            } => {
                self.total_checkpoints += 1;
                self.current.checkpoints += 1;
                if let Some(&slot) = self.roster_by_index.get(&index) {
                    let row = &mut self.roster[slot];
                    row.checkpoints += 1;
                    row.drained_joules = snapshot.drained_joules;
                }
            }
            LaneEvent::Completed(report) => {
                self.current.completed += 1;
                self.current.drained_joules += report.drained_joules;
                self.current.drains.record(report.drained_joules);
                for kind in report.periods_by_kind.keys() {
                    *self.current.prevalence.entry(kind.clone()).or_default() += 1;
                }
                for (kind, joules) in &report.collateral_by_kind {
                    *self
                        .current
                        .collateral_by_kind
                        .entry(kind.clone())
                        .or_default() += joules;
                    self.current.attributed_joules += joules;
                }
                let index = report.index;
                if let Some(slot) = self.slots.get_mut(index) {
                    *slot = Some(Ok(*report));
                }
            }
            LaneEvent::Crashed(failure) => {
                self.current.crashed += 1;
                if failure.intent_log.is_some() {
                    self.current.crashed_replayable += 1;
                    self.total_replayable_crashes += 1;
                }
                let index = failure.index;
                if let Some(slot) = self.slots.get_mut(index) {
                    *slot = Some(Err(*failure));
                }
            }
            LaneEvent::Leave { index } => {
                self.current.left += 1;
                self.devices_online = self.devices_online.saturating_sub(1);
                if let Some(slot) = self.roster_by_index.remove(&index) {
                    self.roster_arena.retire(slot);
                }
            }
        }
        if self.current.events >= self.window_capacity {
            self.roll();
        }
    }

    /// Closes the current window and opens the next one.
    fn roll(&mut self) {
        let closed = self.current.render(self.window_seq, false, self);
        self.last_closed = Some(closed);
        self.current = WindowAccum::default();
        self.window_seq += 1;
    }

    /// The current (still open) window's live stats.
    #[must_use]
    pub fn window(&self) -> WindowStats {
        self.current.render(self.window_seq, true, self)
    }

    /// The most recently closed window, if any has rolled yet.
    #[must_use]
    pub fn last_closed(&self) -> Option<&WindowStats> {
        self.last_closed.as_ref()
    }

    /// Checkpoints ingested over the stream so far.
    #[must_use]
    pub fn checkpoints_ingested(&self) -> u64 {
        self.total_checkpoints
    }

    /// Crashed devices whose streamed failure carried an intent-log
    /// tail (a complete `eandroid replay` bundle), over the whole
    /// stream so far.
    #[must_use]
    pub fn replayable_crashes(&self) -> u64 {
        self.total_replayable_crashes
    }

    /// Device outcomes recorded so far (completed or crashed).
    #[must_use]
    pub fn outcomes_recorded(&self) -> usize {
        self.slots.iter().filter(|slot| slot.is_some()).count()
    }

    /// Whether every device index has an outcome.
    #[must_use]
    pub fn drained(&self) -> bool {
        self.slots.iter().all(|slot| slot.is_some())
    }

    /// Consumes the view into its outcome table, index-ordered. Missing
    /// slots (devices that never reported — impossible once
    /// [`drained`](Self::drained) holds) are dropped.
    #[must_use]
    pub fn into_outcomes(self) -> Vec<Result<DeviceReport, DeviceFailure>> {
        self.slots.into_iter().flatten().collect()
    }

    /// Takes the outcome table (index-ordered, missing slots dropped)
    /// while leaving windows and stream totals in place — so a held
    /// service keeps answering `window` queries truthfully after the
    /// final report has been folded.
    #[must_use]
    pub fn take_outcomes(&mut self) -> Vec<Result<DeviceReport, DeviceFailure>> {
        self.slots.drain(..).flatten().collect()
    }

    /// The live roster as `(device index, checkpoints, latest cumulative
    /// drain in joules)` rows, in device-index order.
    #[must_use]
    pub fn online_roster(&self) -> Vec<(usize, u64, f64)> {
        self.roster_by_index
            .values()
            .map(|&slot| {
                let row = &self.roster[slot];
                (row.index, row.checkpoints, row.drained_joules)
            })
            .collect()
    }

    /// Peak concurrent devices seen so far — the roster arena's
    /// capacity, which bounds the roster's memory footprint regardless
    /// of how many devices churn through the stream.
    #[must_use]
    pub fn roster_peak(&self) -> usize {
        self.roster_arena.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn join(index: usize) -> LaneEvent {
        LaneEvent::Join { index }
    }

    fn checkpoint_at(index: usize, drained: f64) -> LaneEvent {
        LaneEvent::Checkpoint {
            index,
            snapshot: ea_fleet::DeviceCheckpoint {
                sessions_completed: 1,
                sim_seconds: 60.0,
                drained_joules: drained,
            },
        }
    }

    fn leave(index: usize) -> LaneEvent {
        LaneEvent::Leave { index }
    }

    #[test]
    fn roster_tracks_online_devices_and_recycles_slots() {
        let mut view = FleetView::new(8, 1_000);
        view.ingest(join(3));
        view.ingest(join(5));
        view.ingest(checkpoint_at(3, 12.5));
        view.ingest(checkpoint_at(3, 30.0));
        view.ingest(checkpoint_at(5, 7.0));
        assert_eq!(
            view.online_roster(),
            vec![(3, 2, 30.0), (5, 1, 7.0)],
            "cumulative checkpoints and latest drain per online device"
        );
        view.ingest(leave(3));
        assert_eq!(view.online_roster(), vec![(5, 1, 7.0)]);
        // The leaver's arena slot is recycled by the next joiner: peak
        // concurrency stays 2 no matter how many devices churn through.
        for index in [6, 7, 0, 1] {
            view.ingest(join(index));
            view.ingest(leave(index));
        }
        assert_eq!(view.roster_peak(), 2);
        // A recycled row starts clean for its new tenant.
        view.ingest(join(2));
        assert_eq!(view.online_roster(), vec![(2, 0, 0.0), (5, 1, 7.0)]);
    }

    fn completed(index: usize, drained: f64, collateral: f64) -> LaneEvent {
        let mut report = report_stub(index, drained);
        report.periods_by_kind.insert(String::from("cpu_bomb"), 2);
        report
            .collateral_by_kind
            .insert(String::from("cpu_bomb"), collateral);
        LaneEvent::Completed(Box::new(report))
    }

    fn report_stub(index: usize, drained: f64) -> DeviceReport {
        DeviceReport {
            index,
            seed: index as u64,
            apps_installed: 5,
            infected: true,
            vectors: Vec::new(),
            sim_seconds: 60.0,
            drained_joules: drained,
            battery_percent: 90.0,
            periods_by_kind: BTreeMap::new(),
            collateral_by_kind: BTreeMap::new(),
            drivers: BTreeMap::new(),
            victims: BTreeMap::new(),
            predicted_apps_by_kind: BTreeMap::new(),
            apps_linted: 5,
            lint_diagnostics: 1,
            soundness_violations: 0,
            static_predicted_joules: 0.0,
            fault_log: ea_chaos::FaultLog::default(),
        }
    }

    #[test]
    fn windows_roll_on_capacity_and_keep_totals() {
        let mut view = FleetView::new(4, 3);
        view.ingest(LaneEvent::Join { index: 0 });
        view.ingest(LaneEvent::Checkpoint {
            index: 0,
            snapshot: ea_fleet::DeviceCheckpoint {
                sessions_completed: 1,
                sim_seconds: 30.0,
                drained_joules: 10.0,
            },
        });
        assert_eq!(view.window().window_seq, 1);
        assert!(view.last_closed().is_none());
        view.ingest(completed(0, 25.0, 5.0));
        // Third event rolled the window.
        assert_eq!(view.window().window_seq, 2);
        let closed = view.last_closed().cloned();
        let closed = closed.unwrap_or_else(|| panic!("window rolled"));
        assert!(!closed.open);
        assert_eq!(closed.events, 3);
        assert_eq!(closed.checkpoints, 1);
        assert_eq!(closed.completed, 1);
        assert_eq!(closed.prevalence.get("cpu_bomb"), Some(&1));
        assert!(closed.attributed_joules <= closed.drained_joules);
        view.ingest(LaneEvent::Leave { index: 0 });
        assert_eq!(view.window().devices_online, 0);
        assert_eq!(view.window().total_events, 4);
        assert_eq!(view.checkpoints_ingested(), 1);
    }

    #[test]
    fn outcomes_fill_the_slot_table_in_any_arrival_order() {
        let mut view = FleetView::new(3, 100);
        view.ingest(completed(2, 9.0, 1.0));
        view.ingest(LaneEvent::Crashed(Box::new(DeviceFailure {
            index: 0,
            seed: 7,
            message: String::from("boom"),
            attempts: 3,
            checkpoint: None,
            flight_recorder: None,
            intent_log: Some(ea_framework::IntentLog::new(4).dump()),
        })));
        assert!(!view.drained());
        assert_eq!(view.replayable_crashes(), 1);
        assert_eq!(view.window().crashed_replayable, 1);
        view.ingest(completed(1, 4.0, 0.5));
        assert!(view.drained());
        assert_eq!(view.outcomes_recorded(), 3);
        let outcomes = view.into_outcomes();
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes[0].is_err());
        let indices: Vec<usize> = outcomes
            .iter()
            .map(|outcome| match outcome {
                Ok(report) => report.index,
                Err(failure) => failure.index,
            })
            .collect();
        assert_eq!(indices, vec![0, 1, 2], "slots are index-ordered");
    }
}
