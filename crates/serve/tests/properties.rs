//! Property tests for the streaming view's churn invariants and the
//! stream/batch byte-identity contract.
//!
//! The churn harness feeds [`FleetView`] arbitrary interleavings of
//! device lifecycles — join, zero or more checkpoints, a completion or
//! crash, leave — across a shuffled schedule, with window rolls landing
//! at arbitrary points inside every lifecycle. Two invariants must hold
//! whatever the interleaving:
//!
//! 1. **windowed conservation** — in every window (closed or open),
//!    attributed collateral energy never exceeds drained energy;
//! 2. **no checkpoint is dropped** — the view's ingested-checkpoint
//!    count equals the number of checkpoint events pushed.

use std::collections::BTreeMap;

use ea_fleet::{DeviceCheckpoint, DeviceFailure, DeviceReport, FleetConfig};
use ea_serve::{FleetView, LaneEvent, ServeConfig, WindowStats};
use proptest::prelude::*;

/// A synthetic completed-device report with `collateral` joules of its
/// `drained` total attributed to one attack kind.
fn stub_report(index: usize, drained: f64, collateral: f64) -> DeviceReport {
    let mut periods = BTreeMap::new();
    let mut by_kind = BTreeMap::new();
    if collateral > 0.0 {
        periods.insert(String::from("cpu_bomb"), 1);
        by_kind.insert(String::from("cpu_bomb"), collateral);
    }
    DeviceReport {
        index,
        seed: index as u64,
        apps_installed: 4,
        infected: collateral > 0.0,
        vectors: Vec::new(),
        sim_seconds: 60.0,
        drained_joules: drained,
        battery_percent: 80.0,
        periods_by_kind: periods,
        collateral_by_kind: by_kind,
        drivers: BTreeMap::new(),
        victims: BTreeMap::new(),
        predicted_apps_by_kind: BTreeMap::new(),
        apps_linted: 4,
        lint_diagnostics: 0,
        soundness_violations: 0,
        static_predicted_joules: 0.0,
        fault_log: ea_chaos::FaultLog::default(),
    }
}

/// One device's scripted lifecycle, expanded into lane events.
fn lifecycle(
    index: usize,
    checkpoints: usize,
    drained: f64,
    crashes: bool,
    collateral: f64,
) -> Vec<LaneEvent> {
    let mut events = vec![LaneEvent::Join { index }];
    for session in 0..checkpoints {
        events.push(LaneEvent::Checkpoint {
            index,
            snapshot: DeviceCheckpoint {
                sessions_completed: session + 1,
                sim_seconds: 10.0 * (session + 1) as f64,
                drained_joules: drained * (session + 1) as f64 / (checkpoints + 1) as f64,
            },
        });
    }
    if crashes {
        events.push(LaneEvent::Crashed(Box::new(DeviceFailure {
            index,
            seed: index as u64,
            message: String::from("chaos: injected fault"),
            attempts: 3,
            checkpoint: None,
            flight_recorder: None,
            intent_log: None,
        })));
    } else {
        events.push(LaneEvent::Completed(Box::new(stub_report(
            index, drained, collateral,
        ))));
    }
    events.push(LaneEvent::Leave { index });
    events
}

/// Checks windowed conservation on one window.
fn assert_conservation(window: &WindowStats) -> Result<(), TestCaseError> {
    // Strict float comparison with a ulp of slack: attributed is a sum
    // of fractions of the drains summed on the other side.
    prop_assert!(
        window.attributed_joules <= window.drained_joules * (1.0 + 1e-12) + 1e-9,
        "window {} attributed {} > drained {}",
        window.window_seq,
        window.attributed_joules,
        window.drained_joules
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_churn_interleaving_conserves_energy_and_checkpoints(
        specs in proptest::collection::vec(
            // (checkpoints, drained_j, crash?, collateral fraction %)
            (0usize..4, 1u64..500, 0u32..4, 0u64..101),
            1..8,
        ),
        window_capacity in 1u64..12,
        schedule_seed in 0u64..10_000,
    ) {
        // Expand each spec into a per-device event script.
        let scripts: Vec<Vec<LaneEvent>> = specs
            .iter()
            .enumerate()
            .map(|(index, &(checkpoints, drained, crash, collateral_pct))| {
                let drained = drained as f64;
                let crashes = crash == 0; // 1-in-4 crash rate
                let collateral = drained * collateral_pct as f64 / 100.0;
                lifecycle(index, checkpoints, drained, crashes, collateral)
            })
            .collect();
        let pushed_checkpoints: u64 = scripts
            .iter()
            .flatten()
            .filter(|event| matches!(event, LaneEvent::Checkpoint { .. }))
            .count() as u64;
        let total_events: u64 = scripts.iter().map(Vec::len).sum::<usize>() as u64;

        // Interleave: repeatedly pick a device with remaining events
        // (seeded splitmix-style walk), preserving each device's own
        // order — exactly what concurrent lanes guarantee.
        let mut view = FleetView::new(specs.len(), window_capacity);
        let mut cursor: Vec<usize> = vec![0; scripts.len()];
        let mut state = schedule_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut remaining = total_events;
        let mut closed_checked = 0u64;
        while remaining > 0 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let live: Vec<usize> = (0..scripts.len())
                .filter(|&device| cursor[device] < scripts[device].len())
                .collect();
            let device = live[(state % live.len() as u64) as usize];
            let event = scripts[device][cursor[device]].clone();
            cursor[device] += 1;
            remaining -= 1;
            view.ingest(event);

            // Every window the stream closes must conserve energy.
            if let Some(closed) = view.last_closed() {
                if closed.window_seq > closed_checked {
                    closed_checked = closed.window_seq;
                    assert_conservation(closed)?;
                }
            }
            // So must the open window, mid-churn.
            assert_conservation(&view.window())?;
        }

        // No checkpoint was dropped anywhere in the pipeline.
        prop_assert_eq!(view.checkpoints_ingested(), pushed_checkpoints);
        let window = view.window();
        prop_assert_eq!(window.total_events, total_events);
        // Every device reached an outcome and the slot table saw it.
        prop_assert!(view.drained());
        prop_assert_eq!(view.outcomes_recorded(), specs.len());
        prop_assert_eq!(window.devices_online, 0);
    }

    #[test]
    fn streamed_report_matches_batch_for_arbitrary_seeds(
        size in 1usize..5,
        seed in 0u64..1_000,
        lanes in 1usize..4,
    ) {
        let fleet = FleetConfig::smoke(size, seed);
        let (batch, _) = ea_fleet::run_fleet(&fleet);
        let config = ServeConfig { lanes, ..ServeConfig::new(fleet) };
        let (streamed, _) = ea_serve::run_serve(&config, None)
            .unwrap_or_else(|error| panic!("serve without a socket cannot fail: {error}"));
        prop_assert_eq!(
            ea_fleet::render::to_json(&batch),
            ea_fleet::render::to_json(&streamed),
            "(size={}, seed={}, lanes={}) diverged from the batch oracle", size, seed, lanes
        );
    }
}
