//! A Binder-like IPC bus.
//!
//! Android IPC is built on the Binder kernel driver. Two Binder behaviours
//! matter to the paper and are modelled here:
//!
//! 1. **Transactions** — every cross-process call crosses the bus; the
//!    E-Android framework extension intercepts exactly these crossings to
//!    detect collateral-energy events. The bus keeps a bounded transaction
//!    log plus aggregate statistics.
//! 2. **Link-to-death** — a client may attach a death token to a peer
//!    process; when that process dies the kernel dispatches the token. The
//!    stock power manager relies on this to release wakelocks whose holders
//!    died without calling `release()`.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::{DeathNotice, Pid, SimTime, Uid};

/// Classification of a Binder transaction, mirroring the framework calls the
/// paper's Table I enumerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TransactionKind {
    /// `startActivity()`
    StartActivity,
    /// `startService()`
    StartService,
    /// `stopService()` / `stopSelf()`
    StopService,
    /// `bindService()`
    BindService,
    /// `unbindService()`
    UnbindService,
    /// `PowerManager.WakeLock.acquire()`
    AcquireWakelock,
    /// `PowerManager.WakeLock.release()`
    ReleaseWakelock,
    /// Writes through the settings provider (brightness and friends).
    WriteSetting,
    /// Task-stack manipulation (`moveTaskToFront` and friends).
    MoveTask,
    /// Anything else crossing the bus.
    Other,
}

/// One recorded IPC transaction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    /// When the call crossed the bus.
    pub at: SimTime,
    /// Calling process.
    pub from_pid: Pid,
    /// Calling app identity.
    pub from_uid: Uid,
    /// Target app identity (the system server for framework services).
    pub to_uid: Uid,
    /// What kind of call it was.
    pub kind: TransactionKind,
}

/// A registered link-to-death token.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeathLink {
    /// The process whose death is being watched.
    pub watched: Pid,
    /// An opaque cookie the registrant uses to recognise the token. For the
    /// power manager this is the wakelock ID.
    pub cookie: u64,
}

/// Aggregate transaction counts, used by the overhead benchmarks.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinderStats {
    /// Total transactions observed.
    pub total: u64,
    /// Count per transaction kind.
    pub per_kind: BTreeMap<String, u64>,
}

/// The Binder bus: transaction log plus link-to-death registry.
///
/// # Example
///
/// ```
/// use ea_sim::{BinderBus, Pid, SimTime, TransactionKind, Uid};
///
/// let mut bus = BinderBus::new();
/// bus.record(SimTime::ZERO, Pid::from_raw(1), Uid::FIRST_APP, Uid::SYSTEM,
///            TransactionKind::AcquireWakelock);
/// assert_eq!(bus.stats().total, 1);
/// ```
#[derive(Debug, Default)]
pub struct BinderBus {
    log: Vec<Transaction>,
    log_capacity: usize,
    stats: BinderStats,
    links: Vec<DeathLink>,
}

impl BinderBus {
    /// Default bound on the in-memory transaction log.
    pub const DEFAULT_LOG_CAPACITY: usize = 65_536;

    /// Creates a bus with the default log capacity.
    pub fn new() -> Self {
        Self::with_log_capacity(Self::DEFAULT_LOG_CAPACITY)
    }

    /// Creates a bus whose transaction log keeps at most `capacity` entries
    /// (older entries are discarded first; statistics are never discarded).
    pub fn with_log_capacity(capacity: usize) -> Self {
        BinderBus {
            log: Vec::new(),
            log_capacity: capacity.max(1),
            stats: BinderStats::default(),
            links: Vec::new(),
        }
    }

    /// Records a transaction crossing the bus.
    pub fn record(
        &mut self,
        at: SimTime,
        from_pid: Pid,
        from_uid: Uid,
        to_uid: Uid,
        kind: TransactionKind,
    ) {
        if self.log.len() == self.log_capacity {
            // Drop the oldest half in one move instead of shifting per call.
            self.log.drain(..self.log_capacity / 2);
        }
        self.log.push(Transaction {
            at,
            from_pid,
            from_uid,
            to_uid,
            kind,
        });
        self.stats.total += 1;
        *self.stats.per_kind.entry(format!("{kind:?}")).or_insert(0) += 1;
    }

    /// The retained transaction log, oldest first.
    pub fn log(&self) -> &[Transaction] {
        &self.log
    }

    /// Aggregate statistics since creation.
    pub fn stats(&self) -> &BinderStats {
        &self.stats
    }

    /// Registers a death token on `watched`.
    pub fn link_to_death(&mut self, watched: Pid, cookie: u64) {
        self.links.push(DeathLink { watched, cookie });
    }

    /// Removes a previously registered token; returns whether it existed.
    pub fn unlink_to_death(&mut self, watched: Pid, cookie: u64) -> bool {
        let before = self.links.len();
        self.links
            .retain(|link| !(link.watched == watched && link.cookie == cookie));
        self.links.len() != before
    }

    /// Dispatches death notices: removes and returns every cookie linked to a
    /// process named in `deaths`.
    pub fn dispatch_deaths(&mut self, deaths: &[DeathNotice]) -> Vec<DeathLink> {
        let mut fired = Vec::new();
        self.links.retain(|link| {
            if deaths.iter().any(|death| death.pid == link.watched) {
                fired.push(link.clone());
                false
            } else {
                true
            }
        });
        fired
    }

    /// Number of live death links (for tests and debugging).
    pub fn link_count(&self) -> usize {
        self.links.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn notice(pid: Pid) -> DeathNotice {
        DeathNotice {
            pid,
            uid: Uid::FIRST_APP,
            at: SimTime::ZERO,
        }
    }

    #[test]
    fn records_transactions_and_stats() {
        let mut bus = BinderBus::new();
        bus.record(
            SimTime::ZERO,
            Pid::from_raw(1),
            Uid::FIRST_APP,
            Uid::SYSTEM,
            TransactionKind::StartActivity,
        );
        bus.record(
            SimTime::from_secs(1),
            Pid::from_raw(1),
            Uid::FIRST_APP,
            Uid::SYSTEM,
            TransactionKind::StartActivity,
        );
        assert_eq!(bus.log().len(), 2);
        assert_eq!(bus.stats().total, 2);
        assert_eq!(bus.stats().per_kind["StartActivity"], 2);
    }

    #[test]
    fn log_is_bounded_but_stats_are_not() {
        let mut bus = BinderBus::with_log_capacity(8);
        for i in 0..100 {
            bus.record(
                SimTime::from_millis(i),
                Pid::from_raw(1),
                Uid::FIRST_APP,
                Uid::SYSTEM,
                TransactionKind::Other,
            );
        }
        assert!(bus.log().len() <= 8);
        assert_eq!(bus.stats().total, 100);
    }

    #[test]
    fn death_links_fire_once_and_are_removed() {
        let mut bus = BinderBus::new();
        let watched = Pid::from_raw(7);
        bus.link_to_death(watched, 11);
        bus.link_to_death(watched, 12);
        bus.link_to_death(Pid::from_raw(8), 13);

        let fired = bus.dispatch_deaths(&[notice(watched)]);
        let cookies: Vec<u64> = fired.iter().map(|link| link.cookie).collect();
        assert_eq!(cookies, vec![11, 12]);
        assert_eq!(bus.link_count(), 1);

        assert!(bus.dispatch_deaths(&[notice(watched)]).is_empty());
    }

    #[test]
    fn unlink_removes_exactly_one_token() {
        let mut bus = BinderBus::new();
        let watched = Pid::from_raw(7);
        bus.link_to_death(watched, 11);
        assert!(bus.unlink_to_death(watched, 11));
        assert!(!bus.unlink_to_death(watched, 11));
        assert_eq!(bus.link_count(), 0);
    }
}
