//! Bucketed calendar queue: the O(1)-amortized scheduler backend.
//!
//! Simulated workloads schedule almost exclusively into the near future
//! (deferred death notices a few hundred milliseconds out, periodic
//! sweeps tens of seconds out), which is exactly the distribution a
//! calendar queue serves in amortized constant time: events hash into a
//! ring of time buckets by `at / width`, so an enqueue is one bucket
//! append and a dequeue inspects the bucket under the cursor instead of
//! sifting a heap.
//!
//! The contract matches the binary-heap reference byte for byte: events
//! pop in strict `(at, seq)` order, FIFO among same-instant entries.
//! Three mechanisms keep that exact under every schedule/pop
//! interleaving:
//!
//! * each bucket stays sorted by `(at, seq)` — the insert position is a
//!   `partition_point` on `at` alone, because sequence numbers are
//!   handed out monotonically;
//! * a bucket can hold events more than one ring revolution ("year")
//!   ahead; the drain cursor only takes entries whose bucket tick equals
//!   the cursor tick, so a far-future entry never jumps the queue;
//! * events beyond the cursor's current window land in an unsorted
//!   overflow list and migrate into the ring whenever the cursor crosses
//!   a ring boundary (or the queue rebases onto the global minimum after
//!   a dry revolution).
//!
//! The earliest pending key is cached, so `peek_time` is one field read
//! — the hot path for callers that poll "anything due yet?" every tick.

use crate::{ScheduledEvent, SimTime};

/// Width of one bucket in milliseconds. 256 ms spans a couple of
/// integration steps, so near-future timers spread across buckets
/// instead of piling into one.
const BUCKET_WIDTH_MS: u64 = 256;

/// Buckets in the ring; a power of two so the bucket index is a mask.
/// 64 buckets × 256 ms ≈ 16 s per revolution, which covers the
/// framework's periodic sweeps without touching the overflow list.
const BUCKETS: usize = 64;

/// A bucketed calendar queue with exact `(at, seq)` pop order.
#[derive(Debug)]
pub(crate) struct CalendarQueue<T> {
    /// `buckets[tick & (BUCKETS-1)]`, each sorted by `(at, seq)`.
    buckets: Vec<Vec<ScheduledEvent<T>>>,
    /// Absolute bucket tick (`at_ms / BUCKET_WIDTH_MS`) the drain cursor
    /// points at. Entries never live below it.
    cursor: u64,
    /// Events whose tick fell outside `[cursor, cursor + BUCKETS)` at
    /// insert time; migrated ring-ward at boundary crossings.
    overflow: Vec<ScheduledEvent<T>>,
    /// Cached key of the earliest pending event, kept current on every
    /// mutation so peeks cost one read.
    min_key: Option<(SimTime, u64)>,
    len: usize,
}

fn tick_of(at: SimTime) -> u64 {
    at.as_millis() / BUCKET_WIDTH_MS
}

impl<T> CalendarQueue<T> {
    pub(crate) fn new() -> Self {
        CalendarQueue {
            buckets: (0..BUCKETS).map(|_| Vec::new()).collect(),
            cursor: 0,
            overflow: Vec::new(),
            min_key: None,
            len: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        self.min_key.map(|(at, _)| at)
    }

    pub(crate) fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.overflow.clear();
        self.min_key = None;
        self.len = 0;
    }

    pub(crate) fn schedule(&mut self, event: ScheduledEvent<T>) {
        let key = (event.at, event.seq);
        let tick = tick_of(event.at);
        if self.len == 0 {
            self.cursor = tick;
        } else if tick < self.cursor {
            // Scheduling earlier than anything pending: drag the cursor
            // back so the drain scan starts at the new minimum.
            self.cursor = tick;
        }
        if self.min_key.is_none_or(|min| key < min) {
            self.min_key = Some(key);
        }
        self.len += 1;
        if tick < self.cursor + BUCKETS as u64 {
            Self::insert_sorted(&mut self.buckets[(tick as usize) & (BUCKETS - 1)], event);
        } else {
            self.overflow.push(event);
        }
    }

    /// Inserts keeping the bucket sorted by `(at, seq)`. Sequence numbers
    /// are monotone, so the slot is past every entry with `at <= event.at`.
    fn insert_sorted(bucket: &mut Vec<ScheduledEvent<T>>, event: ScheduledEvent<T>) {
        let slot = bucket.partition_point(|existing| existing.at <= event.at);
        bucket.insert(slot, event);
    }

    pub(crate) fn pop_next(&mut self) -> Option<ScheduledEvent<T>> {
        if self.len == 0 {
            return None;
        }
        loop {
            // One ring revolution from the cursor; due entries are at the
            // front of their bucket with a tick equal to the cursor's.
            for _ in 0..BUCKETS {
                let bucket = &mut self.buckets[(self.cursor as usize) & (BUCKETS - 1)];
                if bucket
                    .first()
                    .is_some_and(|front| tick_of(front.at) == self.cursor)
                {
                    let event = bucket.remove(0);
                    self.len -= 1;
                    self.min_key = self.scan_min();
                    return Some(event);
                }
                self.cursor += 1;
                if self.cursor.is_multiple_of(BUCKETS as u64) {
                    self.migrate_overflow();
                }
            }
            // A dry revolution: everything pending sits revolutions ahead
            // (or in overflow). Rebase the cursor onto the global minimum
            // and rescan — guaranteed to hit.
            let (at, _) = self.scan_min().unwrap_or((SimTime::ZERO, 0));
            self.cursor = tick_of(at);
            self.migrate_overflow();
        }
    }

    /// Pulls overflow entries that now fall inside the cursor's window
    /// into the ring.
    fn migrate_overflow(&mut self) {
        if self.overflow.is_empty() {
            return;
        }
        let end = self.cursor + BUCKETS as u64;
        let mut index = 0;
        while index < self.overflow.len() {
            if tick_of(self.overflow[index].at) < end {
                let event = self.overflow.swap_remove(index);
                let tick = tick_of(event.at);
                Self::insert_sorted(&mut self.buckets[(tick as usize) & (BUCKETS - 1)], event);
            } else {
                index += 1;
            }
        }
    }

    /// The minimum `(at, seq)` over every pending entry: bucket fronts
    /// (each bucket is sorted) plus the overflow list.
    fn scan_min(&self) -> Option<(SimTime, u64)> {
        let ring = self
            .buckets
            .iter()
            .filter_map(|bucket| bucket.first())
            .map(|event| (event.at, event.seq))
            .min();
        let spill = self
            .overflow
            .iter()
            .map(|event| (event.at, event.seq))
            .min();
        match (ring, spill) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(at_ms: u64, seq: u64) -> ScheduledEvent<u64> {
        ScheduledEvent {
            at: SimTime::from_millis(at_ms),
            seq,
            payload: seq,
        }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut queue = CalendarQueue::new();
        queue.schedule(event(500, 0));
        queue.schedule(event(100, 1));
        queue.schedule(event(100, 2));
        let order: Vec<u64> = std::iter::from_fn(|| queue.pop_next())
            .map(|e| e.seq)
            .collect();
        assert_eq!(order, [1, 2, 0]);
    }

    #[test]
    fn far_future_events_round_trip_through_overflow() {
        let mut queue = CalendarQueue::new();
        let horizon = BUCKET_WIDTH_MS * BUCKETS as u64;
        queue.schedule(event(horizon * 3, 0));
        queue.schedule(event(10, 1));
        assert_eq!(queue.peek_time(), Some(SimTime::from_millis(10)));
        assert_eq!(queue.pop_next().map(|e| e.seq), Some(1));
        assert_eq!(queue.pop_next().map(|e| e.seq), Some(0));
        assert!(queue.pop_next().is_none());
    }

    #[test]
    fn same_bucket_distant_years_do_not_jump_the_queue() {
        let mut queue = CalendarQueue::new();
        let revolution = BUCKET_WIDTH_MS * BUCKETS as u64;
        // Same bucket index, one revolution apart.
        queue.schedule(event(revolution + 5, 0));
        queue.schedule(event(5, 1));
        assert_eq!(queue.pop_next().map(|e| e.seq), Some(1));
        assert_eq!(queue.pop_next().map(|e| e.seq), Some(0));
    }

    #[test]
    fn scheduling_into_the_past_rewinds_the_cursor() {
        let mut queue = CalendarQueue::new();
        queue.schedule(event(5_000, 0));
        assert_eq!(queue.pop_next().map(|e| e.seq), Some(0));
        queue.schedule(event(100, 1));
        assert_eq!(queue.peek_time(), Some(SimTime::from_millis(100)));
        assert_eq!(queue.pop_next().map(|e| e.seq), Some(1));
    }
}
