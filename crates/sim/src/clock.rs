//! The monotonic simulated clock.

use crate::{SimDuration, SimError, SimTime};

/// A monotonic clock for the simulation.
///
/// The clock only ever moves forward: [`Clock::advance_to`] rejects targets in
/// the past so that accounting code can rely on time intervals being
/// non-negative.
///
/// # Example
///
/// ```
/// use ea_sim::{Clock, SimDuration, SimTime};
///
/// let mut clock = Clock::new();
/// clock.advance_by(SimDuration::from_secs(30));
/// assert_eq!(clock.now(), SimTime::from_secs(30));
/// assert!(clock.advance_to(SimTime::from_secs(10)).is_err());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Clock {
    now: SimTime,
}

impl Clock {
    /// Creates a clock at the simulation epoch.
    pub fn new() -> Self {
        Clock { now: SimTime::ZERO }
    }

    /// Creates a clock already positioned at `start`.
    pub fn starting_at(start: SimTime) -> Self {
        Clock { now: start }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Moves the clock to `target`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TimeWentBackwards`] when `target` precedes the
    /// current instant. Advancing to the current instant is a no-op and is
    /// allowed, since several events may share a timestamp.
    pub fn advance_to(&mut self, target: SimTime) -> Result<SimDuration, SimError> {
        match target.checked_since(self.now) {
            Some(elapsed) => {
                self.now = target;
                Ok(elapsed)
            }
            None => Err(SimError::TimeWentBackwards {
                now: self.now,
                target,
            }),
        }
    }

    /// Moves the clock forward by `span` and returns the new instant.
    pub fn advance_by(&mut self, span: SimDuration) -> SimTime {
        self.now += span;
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_epoch() {
        assert_eq!(Clock::new().now(), SimTime::ZERO);
    }

    #[test]
    fn advance_to_reports_elapsed() {
        let mut clock = Clock::new();
        let elapsed = clock.advance_to(SimTime::from_millis(250)).unwrap();
        assert_eq!(elapsed, SimDuration::from_millis(250));
    }

    #[test]
    fn advance_to_same_instant_is_noop() {
        let mut clock = Clock::starting_at(SimTime::from_secs(1));
        let elapsed = clock.advance_to(SimTime::from_secs(1)).unwrap();
        assert!(elapsed.is_zero());
    }

    #[test]
    fn refuses_to_go_backwards() {
        let mut clock = Clock::starting_at(SimTime::from_secs(5));
        let err = clock.advance_to(SimTime::from_secs(4)).unwrap_err();
        assert!(matches!(err, SimError::TimeWentBackwards { .. }));
        assert_eq!(clock.now(), SimTime::from_secs(5));
    }
}
