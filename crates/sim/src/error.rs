//! Error type for kernel-level simulation failures.

use std::error::Error;
use std::fmt;

use crate::{Pid, SimTime};

/// Errors produced by the simulation kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// An attempt was made to move the monotonic clock backwards.
    TimeWentBackwards {
        /// The clock's current instant.
        now: SimTime,
        /// The (earlier) instant that was requested.
        target: SimTime,
    },
    /// The referenced process does not exist in the process table.
    NoSuchProcess(Pid),
    /// The referenced process exists but has already terminated.
    ProcessDead(Pid),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TimeWentBackwards { now, target } => {
                write!(f, "clock at {now} cannot move backwards to {target}")
            }
            SimError::NoSuchProcess(pid) => write!(f, "no such process: {pid}"),
            SimError::ProcessDead(pid) => write!(f, "process already dead: {pid}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = SimError::TimeWentBackwards {
            now: SimTime::from_secs(2),
            target: SimTime::from_secs(1),
        };
        let text = err.to_string();
        assert!(text.contains("backwards"));

        assert!(SimError::NoSuchProcess(Pid::from_raw(42))
            .to_string()
            .contains("42"));
    }
}
