//! Deterministic event queue.
//!
//! The queue orders events by timestamp and, among events sharing a
//! timestamp, by insertion order. This FIFO tie-break is what makes the whole
//! simulation deterministic: two runs with the same seed schedule the same
//! events and observe them in the same order.
//!
//! Two interchangeable backends honour that contract:
//!
//! * the default [calendar queue](crate::event::EventQueue::new) — a
//!   bucketed ring indexed by sim tick, O(1) amortized for the
//!   near-future-heavy schedules simulated devices generate;
//! * the [reference heap](EventQueue::reference) — the original
//!   `BinaryHeap`, kept as the selectable oracle the property tests and
//!   the `--reference-scheduler` flag compare against.
//!
//! Both pop in strict `(at, seq)` order; the golden and property suites
//! assert the backends agree event for event.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::calendar::CalendarQueue;
use crate::SimTime;

/// An event that has been scheduled for a specific instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<T> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotonic sequence number; the FIFO tie-break among same-time events.
    pub seq: u64,
    /// The caller-defined payload.
    pub payload: T,
}

struct HeapEntry<T>(ScheduledEvent<T>);

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}

impl<T> Eq for HeapEntry<T> {}

impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.0.at, other.0.seq).cmp(&(self.0.at, self.0.seq))
    }
}

enum Backend<T> {
    Calendar(CalendarQueue<T>),
    Reference(BinaryHeap<HeapEntry<T>>),
}

/// A priority queue of timed events with deterministic ordering.
///
/// # Example
///
/// ```
/// use ea_sim::{EventQueue, SimTime};
///
/// let mut queue = EventQueue::new();
/// queue.schedule(SimTime::from_secs(2), "late");
/// queue.schedule(SimTime::from_secs(1), "early");
/// assert_eq!(queue.peek_time(), Some(SimTime::from_secs(1)));
/// assert_eq!(queue.pop_next().unwrap().payload, "early");
/// ```
pub struct EventQueue<T> {
    backend: Backend<T>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue on the default calendar-queue backend.
    pub fn new() -> Self {
        EventQueue {
            backend: Backend::Calendar(CalendarQueue::new()),
            next_seq: 0,
        }
    }

    /// Creates an empty queue on the reference `BinaryHeap` backend — the
    /// pre-optimization oracle the calendar queue is validated against.
    pub fn reference() -> Self {
        EventQueue {
            backend: Backend::Reference(BinaryHeap::new()),
            next_seq: 0,
        }
    }

    /// Creates an empty queue, choosing the backend by flag: the calendar
    /// queue by default, the reference heap when `reference` is set.
    pub fn with_backend(reference: bool) -> Self {
        if reference {
            EventQueue::reference()
        } else {
            EventQueue::new()
        }
    }

    /// Whether this queue runs on the reference heap backend.
    pub fn is_reference(&self) -> bool {
        matches!(self.backend, Backend::Reference(_))
    }

    /// Schedules `payload` to fire at `at` and returns its sequence number.
    pub fn schedule(&mut self, at: SimTime, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let event = ScheduledEvent { at, seq, payload };
        match &mut self.backend {
            Backend::Calendar(calendar) => calendar.schedule(event),
            Backend::Reference(heap) => heap.push(HeapEntry(event)),
        }
        seq
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop_next(&mut self) -> Option<ScheduledEvent<T>> {
        match &mut self.backend {
            Backend::Calendar(calendar) => calendar.pop_next(),
            Backend::Reference(heap) => heap.pop().map(|entry| entry.0),
        }
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Calendar(calendar) => calendar.peek_time(),
            Backend::Reference(heap) => heap.peek().map(|entry| entry.0.at),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Calendar(calendar) => calendar.len(),
            Backend::Reference(heap) => heap.len(),
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes every pending event.
    pub fn clear(&mut self) {
        match &mut self.backend {
            Backend::Calendar(calendar) => calendar.clear(),
            Backend::Reference(heap) => heap.clear(),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.len())
            .field("next_seq", &self.next_seq)
            .field("reference", &self.is_reference())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both_backends() -> [EventQueue<i32>; 2] {
        [EventQueue::new(), EventQueue::reference()]
    }

    #[test]
    fn orders_by_time() {
        for mut queue in both_backends() {
            queue.schedule(SimTime::from_millis(30), 3);
            queue.schedule(SimTime::from_millis(10), 1);
            queue.schedule(SimTime::from_millis(20), 2);

            let order: Vec<i32> = std::iter::from_fn(|| queue.pop_next())
                .map(|event| event.payload)
                .collect();
            assert_eq!(order, [1, 2, 3]);
        }
    }

    #[test]
    fn fifo_among_equal_times() {
        for mut queue in both_backends() {
            queue.clear();
            for i in 0..100 {
                queue.schedule(SimTime::from_secs(1), i);
            }
            let order: Vec<i32> = std::iter::from_fn(|| queue.pop_next())
                .map(|event| event.payload)
                .collect();
            let expected: Vec<i32> = (0..100).collect();
            assert_eq!(order, expected);
        }
    }

    #[test]
    fn peek_does_not_consume() {
        for mut queue in both_backends() {
            queue.schedule(SimTime::from_secs(7), 0);
            assert_eq!(queue.peek_time(), Some(SimTime::from_secs(7)));
            assert_eq!(queue.len(), 1);
        }
    }

    #[test]
    fn clear_empties_the_queue() {
        for mut queue in both_backends() {
            queue.schedule(SimTime::ZERO, 0);
            queue.clear();
            assert!(queue.is_empty());
            assert!(queue.pop_next().is_none());
        }
    }

    #[test]
    fn sequence_numbers_are_unique_and_increasing() {
        for mut queue in both_backends() {
            let a = queue.schedule(SimTime::ZERO, 0);
            let b = queue.schedule(SimTime::ZERO, 0);
            assert!(b > a);
        }
    }

    #[test]
    fn backends_agree_under_interleaved_schedule_and_pop() {
        let mut calendar = EventQueue::new();
        let mut heap = EventQueue::reference();
        assert!(!calendar.is_reference());
        assert!(heap.is_reference());
        // A deterministic schedule/pop interleaving with ties, far-future
        // spikes, and re-scheduling into the past after pops.
        let times = [40u64, 40, 17_000, 3, 3, 3, 900, 40, 120_000, 55, 2, 2];
        for (round, &at) in times.iter().enumerate() {
            calendar.schedule(SimTime::from_millis(at), round);
            heap.schedule(SimTime::from_millis(at), round);
            if round % 3 == 2 {
                assert_eq!(calendar.pop_next(), heap.pop_next());
            }
        }
        loop {
            let (a, b) = (calendar.pop_next(), heap.pop_next());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
