//! Deterministic event queue.
//!
//! The queue orders events by timestamp and, among events sharing a
//! timestamp, by insertion order. This FIFO tie-break is what makes the whole
//! simulation deterministic: two runs with the same seed schedule the same
//! events and observe them in the same order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// An event that has been scheduled for a specific instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<T> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotonic sequence number; the FIFO tie-break among same-time events.
    pub seq: u64,
    /// The caller-defined payload.
    pub payload: T,
}

struct HeapEntry<T>(ScheduledEvent<T>);

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}

impl<T> Eq for HeapEntry<T> {}

impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.0.at, other.0.seq).cmp(&(self.0.at, self.0.seq))
    }
}

/// A priority queue of timed events with deterministic ordering.
///
/// # Example
///
/// ```
/// use ea_sim::{EventQueue, SimTime};
///
/// let mut queue = EventQueue::new();
/// queue.schedule(SimTime::from_secs(2), "late");
/// queue.schedule(SimTime::from_secs(1), "early");
/// assert_eq!(queue.peek_time(), Some(SimTime::from_secs(1)));
/// assert_eq!(queue.pop_next().unwrap().payload, "early");
/// ```
#[derive(Default)]
pub struct EventQueue<T> {
    heap: BinaryHeap<HeapEntry<T>>,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `at` and returns its sequence number.
    pub fn schedule(&mut self, at: SimTime, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap
            .push(HeapEntry(ScheduledEvent { at, seq, payload }));
        seq
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop_next(&mut self) -> Option<ScheduledEvent<T>> {
        self.heap.pop().map(|entry| entry.0)
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|entry| entry.0.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut queue = EventQueue::new();
        queue.schedule(SimTime::from_millis(30), 3);
        queue.schedule(SimTime::from_millis(10), 1);
        queue.schedule(SimTime::from_millis(20), 2);

        let order: Vec<i32> = std::iter::from_fn(|| queue.pop_next())
            .map(|event| event.payload)
            .collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut queue = EventQueue::new();
        for i in 0..100 {
            queue.schedule(SimTime::from_secs(1), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| queue.pop_next())
            .map(|event| event.payload)
            .collect();
        let expected: Vec<i32> = (0..100).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut queue = EventQueue::new();
        queue.schedule(SimTime::from_secs(7), ());
        assert_eq!(queue.peek_time(), Some(SimTime::from_secs(7)));
        assert_eq!(queue.len(), 1);
    }

    #[test]
    fn clear_empties_the_queue() {
        let mut queue = EventQueue::new();
        queue.schedule(SimTime::ZERO, ());
        queue.clear();
        assert!(queue.is_empty());
        assert!(queue.pop_next().is_none());
    }

    #[test]
    fn sequence_numbers_are_unique_and_increasing() {
        let mut queue = EventQueue::new();
        let a = queue.schedule(SimTime::ZERO, ());
        let b = queue.schedule(SimTime::ZERO, ());
        assert!(b > a);
    }
}
