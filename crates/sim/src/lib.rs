//! # ea-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the lowest substrate of the E-Android reproduction. It
//! provides everything the simulated Android framework needs from a "kernel":
//!
//! * a millisecond-resolution simulated clock ([`SimTime`], [`SimDuration`],
//!   [`Clock`]),
//! * a deterministic event queue with stable FIFO ordering among same-time
//!   events ([`EventQueue`]),
//! * a seeded random number generator ([`SimRng`]) so every experiment is
//!   reproducible bit-for-bit,
//! * a process table with user IDs and death notification, mirroring the role
//!   of the Linux process layer underneath Android ([`ProcessTable`]),
//! * a Binder-like IPC bus with transaction records and *link-to-death*
//!   tokens, which Android's `PowerManagerService` relies on to release
//!   wakelocks held by dead processes ([`BinderBus`]),
//! * a proportional-share CPU scheduler that turns per-process demand into
//!   utilization figures, the quantity consumed by utilization-based energy
//!   models ([`CpuScheduler`]).
//!
//! Nothing in this crate knows about activities, wakelocks or energy; those
//! concepts live in `ea-framework`, `ea-power` and `ea-core`.
//!
//! ## Example
//!
//! ```
//! use ea_sim::{Clock, EventQueue, SimTime};
//!
//! let mut clock = Clock::new();
//! let mut queue: EventQueue<&'static str> = EventQueue::new();
//! queue.schedule(SimTime::from_millis(10), "first");
//! queue.schedule(SimTime::from_millis(10), "second");
//! queue.schedule(SimTime::from_millis(5), "zeroth");
//!
//! let mut order = Vec::new();
//! while let Some(event) = queue.pop_next() {
//!     clock.advance_to(event.at).unwrap();
//!     order.push(event.payload);
//! }
//! assert_eq!(order, ["zeroth", "first", "second"]);
//! assert_eq!(clock.now(), SimTime::from_millis(10));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binder;
mod calendar;
mod clock;
mod error;
mod event;
mod process;
pub mod rng;
mod sched;
mod time;

pub use binder::{BinderBus, BinderStats, DeathLink, Transaction, TransactionKind};
pub use clock::Clock;
pub use error::SimError;
pub use event::{EventQueue, ScheduledEvent};
pub use process::{DeathNotice, Pid, ProcessInfo, ProcessState, ProcessTable, Uid};
pub use rng::{splitmix64, splitmix64_lane, splitmix64_stream, SimRng, SPLITMIX64_GAMMA};
pub use sched::{CpuScheduler, CpuSlice};
pub use time::{SimDuration, SimTime};
