//! The process table.
//!
//! Android runs every app in its own Linux process under a unique user ID
//! (the sandbox). The framework cares about two kernel-level facts that this
//! module models: which processes are alive, and *death notification* — the
//! mechanism by which Binder tells interested parties (for E-Android, the
//! `PowerManagerService`) that a process died so its wakelocks can be
//! released.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{SimError, SimTime};

/// A process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Pid(u32);

impl Pid {
    /// Builds a `Pid` from a raw number (mostly for tests and display code).
    pub const fn from_raw(raw: u32) -> Self {
        Pid(raw)
    }

    /// The raw numeric value.
    pub const fn as_raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid:{}", self.0)
    }
}

/// An Android user ID — one per installed app (the sandbox identity).
///
/// Energy accounting in both BatteryStats and E-Android is keyed by UID, not
/// PID: all processes of one app share a UID.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Uid(u32);

impl Uid {
    /// The conventional first UID assigned to user-installed apps on Android.
    pub const FIRST_APP: Uid = Uid(10_000);

    /// UID of the system server (`android.uid.system`).
    pub const SYSTEM: Uid = Uid(1_000);

    /// Builds a `Uid` from a raw number.
    pub const fn from_raw(raw: u32) -> Self {
        Uid(raw)
    }

    /// The raw numeric value.
    pub const fn as_raw(self) -> u32 {
        self.0
    }

    /// Whether this UID belongs to the system rather than an installed app.
    pub const fn is_system(self) -> bool {
        self.0 < Uid::FIRST_APP.0
    }

    /// The next app UID after this one.
    pub const fn next(self) -> Uid {
        Uid(self.0 + 1)
    }
}

impl fmt::Display for Uid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "uid:{}", self.0)
    }
}

/// Liveness of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProcessState {
    /// Scheduled normally.
    Alive,
    /// Terminated; retained in the table for post-mortem queries.
    Dead,
}

/// A row of the process table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessInfo {
    /// The process identifier.
    pub pid: Pid,
    /// The owning app's user ID.
    pub uid: Uid,
    /// Human-readable process name (the app's package name by convention).
    pub name: String,
    /// Liveness.
    pub state: ProcessState,
    /// When the process was spawned.
    pub spawned_at: SimTime,
    /// When the process died, if it has.
    pub died_at: Option<SimTime>,
}

impl ProcessInfo {
    /// Whether the process is still alive.
    pub fn is_alive(&self) -> bool {
        self.state == ProcessState::Alive
    }
}

/// A death notification produced when a process terminates.
///
/// Consumers (the framework's power manager, E-Android's monitor) drain these
/// from [`ProcessTable::drain_deaths`] every scheduling step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeathNotice {
    /// The process that died.
    pub pid: Pid,
    /// Its owning UID.
    pub uid: Uid,
    /// When it died.
    pub at: SimTime,
}

/// The kernel process table.
///
/// # Example
///
/// ```
/// use ea_sim::{ProcessTable, SimTime, Uid};
///
/// let mut table = ProcessTable::new();
/// let pid = table.spawn(Uid::FIRST_APP, "com.example.app", SimTime::ZERO);
/// assert!(table.get(pid).unwrap().is_alive());
/// table.kill(pid, SimTime::from_secs(1)).unwrap();
/// let deaths = table.drain_deaths();
/// assert_eq!(deaths.len(), 1);
/// assert_eq!(deaths[0].pid, pid);
/// ```
#[derive(Debug, Default)]
pub struct ProcessTable {
    rows: BTreeMap<Pid, ProcessInfo>,
    next_pid: u32,
    pending_deaths: Vec<DeathNotice>,
}

impl ProcessTable {
    /// Creates an empty table. PIDs start at 1000 to resemble a real system.
    pub fn new() -> Self {
        ProcessTable {
            rows: BTreeMap::new(),
            next_pid: 1_000,
            pending_deaths: Vec::new(),
        }
    }

    /// Spawns a new process for `uid` and returns its PID.
    pub fn spawn(&mut self, uid: Uid, name: impl Into<String>, now: SimTime) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.rows.insert(
            pid,
            ProcessInfo {
                pid,
                uid,
                name: name.into(),
                state: ProcessState::Alive,
                spawned_at: now,
                died_at: None,
            },
        );
        pid
    }

    /// Terminates `pid`, queueing a death notification.
    ///
    /// # Errors
    ///
    /// [`SimError::NoSuchProcess`] when the PID was never spawned;
    /// [`SimError::ProcessDead`] when it already terminated.
    pub fn kill(&mut self, pid: Pid, now: SimTime) -> Result<(), SimError> {
        let row = self
            .rows
            .get_mut(&pid)
            .ok_or(SimError::NoSuchProcess(pid))?;
        if row.state == ProcessState::Dead {
            return Err(SimError::ProcessDead(pid));
        }
        row.state = ProcessState::Dead;
        row.died_at = Some(now);
        self.pending_deaths.push(DeathNotice {
            pid,
            uid: row.uid,
            at: now,
        });
        Ok(())
    }

    /// Looks up a process by PID (alive or dead).
    pub fn get(&self, pid: Pid) -> Option<&ProcessInfo> {
        self.rows.get(&pid)
    }

    /// Whether `pid` exists and is alive.
    pub fn is_alive(&self, pid: Pid) -> bool {
        self.get(pid).is_some_and(ProcessInfo::is_alive)
    }

    /// All live processes owned by `uid`, in PID order.
    pub fn pids_of(&self, uid: Uid) -> Vec<Pid> {
        self.rows
            .values()
            .filter(|row| row.uid == uid && row.is_alive())
            .map(|row| row.pid)
            .collect()
    }

    /// Iterates over all rows in PID order.
    pub fn iter(&self) -> impl Iterator<Item = &ProcessInfo> {
        self.rows.values()
    }

    /// Number of live processes.
    pub fn live_count(&self) -> usize {
        self.rows.values().filter(|row| row.is_alive()).count()
    }

    /// Removes and returns all death notifications queued since the last
    /// drain, in death order.
    pub fn drain_deaths(&mut self) -> Vec<DeathNotice> {
        std::mem::take(&mut self.pending_deaths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_assigns_distinct_pids() {
        let mut table = ProcessTable::new();
        let a = table.spawn(Uid::FIRST_APP, "a", SimTime::ZERO);
        let b = table.spawn(Uid::FIRST_APP.next(), "b", SimTime::ZERO);
        assert_ne!(a, b);
        assert_eq!(table.live_count(), 2);
    }

    #[test]
    fn kill_marks_dead_and_notifies_once() {
        let mut table = ProcessTable::new();
        let pid = table.spawn(Uid::FIRST_APP, "a", SimTime::ZERO);
        table.kill(pid, SimTime::from_secs(3)).unwrap();

        assert!(!table.is_alive(pid));
        assert_eq!(table.get(pid).unwrap().died_at, Some(SimTime::from_secs(3)));

        let deaths = table.drain_deaths();
        assert_eq!(deaths.len(), 1);
        assert_eq!(deaths[0].uid, Uid::FIRST_APP);
        assert!(table.drain_deaths().is_empty(), "drain is destructive");
    }

    #[test]
    fn double_kill_is_an_error() {
        let mut table = ProcessTable::new();
        let pid = table.spawn(Uid::FIRST_APP, "a", SimTime::ZERO);
        table.kill(pid, SimTime::ZERO).unwrap();
        assert_eq!(
            table.kill(pid, SimTime::ZERO),
            Err(SimError::ProcessDead(pid))
        );
    }

    #[test]
    fn kill_unknown_pid_is_an_error() {
        let mut table = ProcessTable::new();
        let ghost = Pid::from_raw(9_999);
        assert_eq!(
            table.kill(ghost, SimTime::ZERO),
            Err(SimError::NoSuchProcess(ghost))
        );
    }

    #[test]
    fn pids_of_filters_by_uid_and_liveness() {
        let mut table = ProcessTable::new();
        let uid = Uid::FIRST_APP;
        let a = table.spawn(uid, "a", SimTime::ZERO);
        let b = table.spawn(uid, "a:remote", SimTime::ZERO);
        let _other = table.spawn(uid.next(), "b", SimTime::ZERO);
        table.kill(b, SimTime::ZERO).unwrap();
        assert_eq!(table.pids_of(uid), vec![a]);
    }

    #[test]
    fn uid_helpers() {
        assert!(Uid::SYSTEM.is_system());
        assert!(!Uid::FIRST_APP.is_system());
        assert_eq!(Uid::FIRST_APP.next().as_raw(), 10_001);
    }
}
