//! Seeded randomness for reproducible experiments.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The splitmix64 increment (the golden-ratio gamma).
pub const SPLITMIX64_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The splitmix64 finalizer: a bijective avalanche mix on 64 bits.
///
/// This is the one seeding primitive shared by every layer that derives
/// independent deterministic streams (fleet device seeds, chaos fault
/// lanes): a pure function, so derived seeds never depend on evaluation
/// order or thread placement.
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Position `index + 1` of the splitmix64 stream started at `seed`:
/// the per-device seed schedule of `ea-fleet`.
#[must_use]
pub fn splitmix64_stream(seed: u64, index: u64) -> u64 {
    splitmix64(seed.wrapping_add(index.wrapping_add(1).wrapping_mul(SPLITMIX64_GAMMA)))
}

/// Decorrelates a `(seed, lane, layer)` triple into an independent stream
/// seed: the per-lane fault-injector schedule of `ea-chaos`.
#[must_use]
pub fn splitmix64_lane(seed: u64, lane: u64, layer: u64) -> u64 {
    splitmix64(
        seed.wrapping_add(lane.wrapping_mul(SPLITMIX64_GAMMA))
            .wrapping_add(layer.rotate_left(23)),
    )
}

/// A deterministic random number generator for the simulation.
///
/// All stochastic choices in the workload generators (corpus sampling,
/// inter-arrival jitter, background service workloads) draw from a `SimRng`
/// seeded by the experiment, so every figure in `EXPERIMENTS.md` is exactly
/// reproducible.
///
/// # Example
///
/// ```
/// use ea_sim::SimRng;
///
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha8Rng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        SimRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator, useful for giving each app or
    /// workload its own stream without correlating them.
    pub fn fork(&mut self, label: u64) -> SimRng {
        let base = self.inner.next_u64();
        SimRng::seed(base ^ label.rotate_left(17))
    }

    /// The next `u64` from the stream.
    #[allow(clippy::should_implement_trait)]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A uniform integer in `[low, high)`. Panics when `low >= high`.
    pub fn range_u64(&mut self, low: u64, high: u64) -> u64 {
        assert!(low < high, "empty range");
        self.inner.gen_range(low..high)
    }

    /// A Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p.clamp(0.0, 1.0)
    }

    /// A uniform float in `[low, high)`.
    pub fn range_f64(&mut self, low: f64, high: f64) -> f64 {
        assert!(low < high, "empty range");
        self.inner.gen_range(low..high)
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_deterministic_and_independent() {
        let mut parent1 = SimRng::seed(9);
        let mut parent2 = SimRng::seed(9);
        let mut child1 = parent1.fork(1);
        let mut child2 = parent2.fork(1);
        assert_eq!(child1.next_u64(), child2.next_u64());

        let mut sibling = parent1.fork(2);
        assert_ne!(child1.next_u64(), sibling.next_u64());
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = SimRng::seed(3);
        for _ in 0..1000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_u64_respects_bounds() {
        let mut rng = SimRng::seed(4);
        for _ in 0..1000 {
            let x = rng.range_u64(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn splitmix_matches_the_published_test_vector() {
        // First outputs of the splitmix64 stream seeded with 0 (Vigna's
        // reference implementation).
        assert_eq!(splitmix64_stream(0, 0), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // Out-of-range probabilities are clamped instead of panicking.
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }
}
