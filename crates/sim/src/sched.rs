//! A proportional-share CPU scheduler.
//!
//! Utilization-based energy models (PowerTutor, BatteryStats) charge CPU
//! energy to apps in proportion to the CPU time they actually received. The
//! simulation therefore needs a mapping from what processes *want* (demand,
//! expressed as a fraction of one core) to what they *get* (utilization)
//! under a bounded number of cores.
//!
//! The model: each process posts a demand `d ∈ [0, cores]`. When total demand
//! fits within capacity every process runs at its demand; when the CPU is
//! oversubscribed, capacity is divided proportionally to demand — the
//! behaviour of a fair-share scheduler at steady state.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::Pid;

/// The share of CPU a process received over an accounting interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuSlice {
    /// The process.
    pub pid: Pid,
    /// Core-seconds per second granted, in `[0, cores]`.
    pub utilization: f64,
}

/// Proportional-share CPU scheduler.
///
/// # Example
///
/// ```
/// use ea_sim::{CpuScheduler, Pid};
///
/// let mut sched = CpuScheduler::new(1.0); // single core
/// sched.set_demand(Pid::from_raw(1), 0.8);
/// sched.set_demand(Pid::from_raw(2), 0.8);
/// let slices = sched.utilizations();
/// // Oversubscribed: each gets half of the core.
/// assert!((slices[0].utilization - 0.5).abs() < 1e-9);
/// assert!((slices[1].utilization - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct CpuScheduler {
    cores: f64,
    demands: BTreeMap<Pid, f64>,
}

impl CpuScheduler {
    /// Creates a scheduler with `cores` cores of capacity. Clamped to be at
    /// least a small positive value so division is always defined.
    pub fn new(cores: f64) -> Self {
        CpuScheduler {
            cores: cores.max(0.01),
            demands: BTreeMap::new(),
        }
    }

    /// Total capacity in cores.
    pub fn cores(&self) -> f64 {
        self.cores
    }

    /// Posts `pid`'s demand as a fraction of one core (clamped to
    /// `[0, cores]`). A demand of zero keeps the process schedulable but
    /// idle.
    pub fn set_demand(&mut self, pid: Pid, demand: f64) {
        self.demands.insert(pid, demand.clamp(0.0, self.cores));
    }

    /// Adds `delta` to `pid`'s demand (useful for layered workloads such as
    /// "foreground UI plus bound service").
    pub fn add_demand(&mut self, pid: Pid, delta: f64) {
        let current = self.demands.get(&pid).copied().unwrap_or(0.0);
        self.set_demand(pid, current + delta);
    }

    /// Removes a process entirely (on death).
    pub fn remove(&mut self, pid: Pid) {
        self.demands.remove(&pid);
    }

    /// Current posted demand for `pid`, or zero when unknown.
    pub fn demand_of(&self, pid: Pid) -> f64 {
        self.demands.get(&pid).copied().unwrap_or(0.0)
    }

    /// Sum of posted demands (may exceed capacity).
    pub fn total_demand(&self) -> f64 {
        self.demands.values().sum()
    }

    /// Total utilization actually granted, in cores (never exceeds
    /// capacity).
    pub fn total_utilization(&self) -> f64 {
        self.total_demand().min(self.cores)
    }

    /// Streams per-process utilization under proportional sharing, in PID
    /// order, without allocating — the hot-loop form consumed once per
    /// profiler step ([`utilizations`](Self::utilizations) is the collected
    /// convenience wrapper).
    pub fn slices(&self) -> impl Iterator<Item = CpuSlice> + '_ {
        let total = self.total_demand();
        let scale = if total > self.cores {
            self.cores / total
        } else {
            1.0
        };
        self.demands.iter().map(move |(&pid, &demand)| CpuSlice {
            pid,
            utilization: demand * scale,
        })
    }

    /// Computes per-process utilization under proportional sharing, in PID
    /// order.
    pub fn utilizations(&self) -> Vec<CpuSlice> {
        self.slices().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn undersubscribed_grants_full_demand() {
        let mut sched = CpuScheduler::new(4.0);
        sched.set_demand(Pid::from_raw(1), 0.5);
        sched.set_demand(Pid::from_raw(2), 1.0);
        let slices = sched.utilizations();
        assert!((slices[0].utilization - 0.5).abs() < EPS);
        assert!((slices[1].utilization - 1.0).abs() < EPS);
        assert!((sched.total_utilization() - 1.5).abs() < EPS);
    }

    #[test]
    fn oversubscribed_scales_proportionally() {
        let mut sched = CpuScheduler::new(1.0);
        sched.set_demand(Pid::from_raw(1), 0.9);
        sched.set_demand(Pid::from_raw(2), 0.3);
        let slices = sched.utilizations();
        let total: f64 = slices.iter().map(|slice| slice.utilization).sum();
        assert!((total - 1.0).abs() < EPS, "capacity fully used");
        // 3:1 demand ratio preserved.
        assert!((slices[0].utilization / slices[1].utilization - 3.0).abs() < 1e-6);
    }

    #[test]
    fn demand_is_clamped_to_capacity() {
        let mut sched = CpuScheduler::new(2.0);
        sched.set_demand(Pid::from_raw(1), 99.0);
        assert!((sched.demand_of(Pid::from_raw(1)) - 2.0).abs() < EPS);
    }

    #[test]
    fn add_demand_accumulates() {
        let mut sched = CpuScheduler::new(4.0);
        let pid = Pid::from_raw(1);
        sched.add_demand(pid, 0.2);
        sched.add_demand(pid, 0.3);
        assert!((sched.demand_of(pid) - 0.5).abs() < EPS);
    }

    #[test]
    fn remove_drops_the_process() {
        let mut sched = CpuScheduler::new(1.0);
        let pid = Pid::from_raw(1);
        sched.set_demand(pid, 0.4);
        sched.remove(pid);
        assert_eq!(sched.utilizations().len(), 0);
        assert!((sched.demand_of(pid)).abs() < EPS);
    }

    #[test]
    fn negative_demand_clamps_to_zero() {
        let mut sched = CpuScheduler::new(1.0);
        let pid = Pid::from_raw(1);
        sched.set_demand(pid, -0.5);
        assert!((sched.demand_of(pid)).abs() < EPS);
    }
}
