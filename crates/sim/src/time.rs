//! Simulated time primitives.
//!
//! The simulation runs on a millisecond-resolution virtual clock. [`SimTime`]
//! is an absolute instant since simulation start; [`SimDuration`] is a span
//! between two instants. Both are thin wrappers over `u64` milliseconds with
//! checked/saturating arithmetic so the framework code can never silently
//! wrap around.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// An absolute instant on the simulated clock, in milliseconds since the
/// simulation started.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[must_use]
pub struct SimTime(u64);

/// A span of simulated time, in milliseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[must_use]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `millis` milliseconds after the epoch.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis)
    }

    /// Creates an instant `secs` seconds after the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000)
    }

    /// Milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for plotting and power math).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Hours since the epoch, as a float (the x-axis unit of the paper's
    /// battery-depletion figure).
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600_000.0
    }

    /// The span from `earlier` to `self`, saturating at zero if `earlier` is
    /// actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The span from `earlier` to `self`, or `None` when `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000)
    }

    /// Creates a span of `mins` minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000)
    }

    /// Creates a span of `hours` hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600_000)
    }

    /// The span in whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// The span in seconds as a float; this is the `dt` used when integrating
    /// power into energy.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Whether the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of two spans.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimTime {
    type Output = SimDuration;

    /// Panics in debug builds when `rhs > self`; use
    /// [`SimTime::saturating_since`] when the ordering is not statically
    /// known.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "SimTime subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0 % 1_000;
        let s = (self.0 / 1_000) % 60;
        let m = (self.0 / 60_000) % 60;
        let h = self.0 / 3_600_000;
        write!(f, "{h:02}:{m:02}:{s:02}.{ms:03}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ms", self.0)
        } else if self.0 < 60_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else {
            write!(f, "{:.2}min", self.0 as f64 / 60_000.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
    }

    #[test]
    fn add_duration_advances_time() {
        let t = SimTime::from_millis(500) + SimDuration::from_secs(1);
        assert_eq!(t.as_millis(), 1_500);
    }

    #[test]
    fn subtraction_yields_duration() {
        let span = SimTime::from_secs(5) - SimTime::from_secs(2);
        assert_eq!(span, SimDuration::from_secs(3));
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let span = SimTime::from_secs(1).saturating_since(SimTime::from_secs(9));
        assert_eq!(span, SimDuration::ZERO);
    }

    #[test]
    fn checked_since_detects_inversion() {
        assert!(SimTime::from_secs(1)
            .checked_since(SimTime::from_secs(2))
            .is_none());
        assert_eq!(
            SimTime::from_secs(2).checked_since(SimTime::from_secs(1)),
            Some(SimDuration::from_secs(1))
        );
    }

    #[test]
    fn float_conversions() {
        assert!((SimDuration::from_millis(1_500).as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((SimTime::from_hours_for_test(2).as_hours_f64() - 2.0).abs() < 1e-12);
    }

    impl SimTime {
        fn from_hours_for_test(h: u64) -> SimTime {
            SimTime::from_millis(h * 3_600_000)
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(3_661_004).to_string(), "01:01:01.004");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12ms");
        assert_eq!(SimDuration::from_millis(1_500).to_string(), "1.500s");
        assert_eq!(SimDuration::from_mins(3).to_string(), "3.00min");
    }
}
