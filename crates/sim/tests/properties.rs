//! Property-based tests of the kernel substrate.

use ea_sim::{BinderBus, CpuScheduler, EventQueue, Pid, ProcessTable, SimDuration, SimTime, Uid};
use proptest::prelude::*;

proptest! {
    #[test]
    fn event_queue_pops_in_time_then_fifo_order(
        times in proptest::collection::vec(0u64..1_000, 1..200)
    ) {
        let mut queue = EventQueue::new();
        for (index, &time) in times.iter().enumerate() {
            queue.schedule(SimTime::from_millis(time), index);
        }
        let mut last: Option<(SimTime, u64)> = None;
        while let Some(event) = queue.pop_next() {
            if let Some((time, seq)) = last {
                prop_assert!(event.at >= time);
                if event.at == time {
                    prop_assert!(event.seq > seq, "FIFO among equal timestamps");
                }
            }
            last = Some((event.at, event.seq));
        }
    }

    #[test]
    fn calendar_queue_matches_heap_pop_for_pop(
        // Times mix dense near-future ties (0..2_000 ms collides within
        // buckets), multi-revolution gaps, and far-future overflow spikes.
        times in proptest::collection::vec(
            prop_oneof![0u64..2_000, 0u64..60_000, 0u64..10_000_000],
            1..300,
        ),
        // After each schedule, pop this many events from both backends.
        pops in proptest::collection::vec(0usize..3, 1..300),
    ) {
        let mut calendar = EventQueue::new();
        let mut heap = EventQueue::reference();
        for (index, &time) in times.iter().enumerate() {
            let at = SimTime::from_millis(time);
            prop_assert_eq!(calendar.schedule(at, index), heap.schedule(at, index));
            for _ in 0..pops.get(index).copied().unwrap_or(0) {
                prop_assert_eq!(calendar.peek_time(), heap.peek_time());
                let (a, b) = (calendar.pop_next(), heap.pop_next());
                prop_assert_eq!(a, b, "interleaved pop diverged at schedule {}", index);
            }
            prop_assert_eq!(calendar.len(), heap.len());
        }
        loop {
            prop_assert_eq!(calendar.peek_time(), heap.peek_time());
            let (a, b) = (calendar.pop_next(), heap.pop_next());
            prop_assert_eq!(a.clone(), b, "drain diverged");
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn calendar_queue_preserves_fifo_among_same_instant_bursts(
        instants in proptest::collection::vec(0u64..500, 1..40),
        burst in 1usize..20,
    ) {
        let mut calendar = EventQueue::new();
        let mut heap = EventQueue::reference();
        for &instant in &instants {
            for copy in 0..burst {
                let at = SimTime::from_millis(instant);
                calendar.schedule(at, copy);
                heap.schedule(at, copy);
            }
        }
        while let Some(expected) = heap.pop_next() {
            prop_assert_eq!(calendar.pop_next(), Some(expected));
        }
        prop_assert!(calendar.pop_next().is_none());
    }

    #[test]
    fn scheduler_never_exceeds_capacity_and_is_proportional(
        demands in proptest::collection::vec(0.0f64..2.0, 1..20),
        cores in 0.5f64..8.0
    ) {
        let mut sched = CpuScheduler::new(cores);
        for (index, &demand) in demands.iter().enumerate() {
            sched.set_demand(Pid::from_raw(index as u32 + 1), demand);
        }
        let slices = sched.utilizations();
        let total: f64 = slices.iter().map(|slice| slice.utilization).sum();
        prop_assert!(total <= cores + 1e-9);
        for slice in &slices {
            prop_assert!(slice.utilization >= 0.0);
            prop_assert!(slice.utilization <= sched.demand_of(slice.pid) + 1e-9,
                "no process gets more than it asked for");
        }
        // Proportionality: granted utilizations preserve demand ordering.
        for a in &slices {
            for b in &slices {
                if sched.demand_of(a.pid) > sched.demand_of(b.pid) {
                    prop_assert!(a.utilization >= b.utilization - 1e-9);
                }
            }
        }
    }

    #[test]
    fn process_table_death_notices_fire_exactly_once(
        kills in proptest::collection::vec(any::<bool>(), 1..50)
    ) {
        let mut table = ProcessTable::new();
        let pids: Vec<Pid> = (0..kills.len())
            .map(|index| table.spawn(Uid::from_raw(10_000 + index as u32), "p", SimTime::ZERO))
            .collect();
        let mut expected = 0usize;
        for (pid, &kill) in pids.iter().zip(&kills) {
            if kill {
                table.kill(*pid, SimTime::from_secs(1)).unwrap();
                expected += 1;
            }
        }
        prop_assert_eq!(table.drain_deaths().len(), expected);
        prop_assert!(table.drain_deaths().is_empty());
        prop_assert_eq!(table.live_count(), kills.len() - expected);
    }

    #[test]
    fn binder_links_fire_once_per_death(
        cookie_count in 1usize..20
    ) {
        let mut table = ProcessTable::new();
        let mut bus = BinderBus::new();
        let watched = table.spawn(Uid::FIRST_APP, "w", SimTime::ZERO);
        for cookie in 0..cookie_count as u64 {
            bus.link_to_death(watched, cookie);
        }
        table.kill(watched, SimTime::ZERO).unwrap();
        let deaths = table.drain_deaths();
        let fired = bus.dispatch_deaths(&deaths);
        prop_assert_eq!(fired.len(), cookie_count);
        prop_assert!(bus.dispatch_deaths(&deaths).is_empty());
    }

    #[test]
    fn time_arithmetic_round_trips(
        base in 0u64..1_000_000,
        delta in 0u64..1_000_000
    ) {
        let start = SimTime::from_millis(base);
        let later = start + SimDuration::from_millis(delta);
        prop_assert_eq!(later - start, SimDuration::from_millis(delta));
        prop_assert_eq!(later.saturating_since(start).as_millis(), delta);
        prop_assert!(start.checked_since(later).is_none() || delta == 0);
    }
}
