//! Typed structured events emitted by the profiling pipeline.
//!
//! Payloads are primitives (raw uids, label strings, joules as `f64`) so
//! this crate sits below every other layer: the sim, framework, and core
//! crates convert their own types before emitting.

use serde::{Deserialize, Serialize};

/// One structured event, timestamped in simulated time by the caller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TelemetryEvent {
    /// An Android framework event left the system event bus.
    Framework {
        /// Event kind, e.g. `ActivityStarted`.
        kind: String,
        /// The app the event concerns, when it concerns one.
        uid: Option<u32>,
    },
    /// The lifecycle tracker observed an app state transition.
    Lifecycle {
        /// App whose lifecycle changed.
        uid: u32,
        /// Human-readable transition, e.g. `Cached -> Foreground`.
        transition: String,
    },
    /// A collateral-energy attack period opened (Algorithm 1 `begin`).
    AttackOpened {
        /// Monitor-assigned attack id.
        id: u64,
        /// Attack kind label, e.g. `ServiceBind`.
        kind: String,
        /// The attacking app.
        attacker: u32,
    },
    /// A collateral-energy attack period closed (Algorithm 1 `end`).
    AttackClosed {
        /// Monitor-assigned attack id.
        id: u64,
        /// Attack kind label.
        kind: String,
        /// The attacking app.
        attacker: u32,
        /// Collateral energy accrued over the attack, in joules.
        collateral_joules: f64,
    },
    /// One app's energy attribution for one profiler interval.
    Attribution {
        /// App charged.
        uid: u32,
        /// Energy charged this interval, in joules.
        joules: f64,
    },
    /// The battery drained over one profiler interval.
    BatteryDrain {
        /// Energy drained, in joules.
        joules: f64,
        /// Remaining charge in percent of design capacity.
        remaining_percent: f64,
    },
    /// Periodic kernel-simulation statistics.
    KernelStats {
        /// Pending entries in the event queue.
        queue_depth: usize,
        /// Binder transactions completed so far.
        binder_transactions: u64,
        /// Total CPU utilization across cores, in core-fractions.
        sched_utilization: f64,
    },
}

impl TelemetryEvent {
    /// A short stable label for the event, used as counter suffix and
    /// Chrome trace event name.
    pub fn label(&self) -> &'static str {
        match self {
            TelemetryEvent::Framework { .. } => "framework",
            TelemetryEvent::Lifecycle { .. } => "lifecycle",
            TelemetryEvent::AttackOpened { .. } => "attack_opened",
            TelemetryEvent::AttackClosed { .. } => "attack_closed",
            TelemetryEvent::Attribution { .. } => "attribution",
            TelemetryEvent::BatteryDrain { .. } => "battery_drain",
            TelemetryEvent::KernelStats { .. } => "kernel_stats",
        }
    }
}

/// A [`TelemetryEvent`] plus its simulated-time timestamp; one JSONL line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Simulated time of the event, in microseconds.
    pub t_us: u64,
    /// The event itself.
    pub event: TelemetryEvent,
}
