//! Trace exporters: replayable JSONL and the Chrome trace-event format.

use crate::{Recorder, TelemetryEvent, TraceRecord};
use std::io::{self, Write};

/// Writes the deterministic event stream as JSON Lines: one
/// [`TraceRecord`] per line, in emission order. Replayable with
/// [`read_jsonl`]; byte-identical across runs with the same seed because
/// every timestamp is simulated time.
pub fn write_jsonl(recorder: &Recorder, out: &mut dyn Write) -> io::Result<()> {
    for record in recorder.events() {
        let line = serde_json::to_string(&record)
            .map_err(|error| io::Error::new(io::ErrorKind::InvalidData, error.to_string()))?;
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
    }
    Ok(())
}

/// Parses a JSONL trace written by [`write_jsonl`].
pub fn read_jsonl(input: &str) -> Result<Vec<TraceRecord>, String> {
    input
        .lines()
        .filter(|line| !line.trim().is_empty())
        .map(|line| serde_json::from_str(line).map_err(|error| error.to_string()))
        .collect()
}

fn push_arg(args: &mut Vec<(String, String)>, key: &str, value: impl std::fmt::Display) {
    args.push((key.to_string(), value.to_string()));
}

/// Chrome trace args for one event: key → JSON-literal value.
fn event_args(event: &TelemetryEvent) -> Vec<(String, String)> {
    let mut args = Vec::new();
    match event {
        TelemetryEvent::Framework { kind, uid } => {
            push_arg(&mut args, "kind", format!("{kind:?}"));
            if let Some(uid) = uid {
                push_arg(&mut args, "uid", uid);
            }
        }
        TelemetryEvent::Lifecycle { uid, transition } => {
            push_arg(&mut args, "uid", uid);
            push_arg(&mut args, "transition", format!("{transition:?}"));
        }
        TelemetryEvent::AttackOpened { id, kind, attacker } => {
            push_arg(&mut args, "id", id);
            push_arg(&mut args, "kind", format!("{kind:?}"));
            push_arg(&mut args, "attacker", attacker);
        }
        TelemetryEvent::AttackClosed {
            id,
            kind,
            attacker,
            collateral_joules,
        } => {
            push_arg(&mut args, "id", id);
            push_arg(&mut args, "kind", format!("{kind:?}"));
            push_arg(&mut args, "attacker", attacker);
            push_arg(&mut args, "collateral_joules", collateral_joules);
        }
        TelemetryEvent::Attribution { uid, joules } => {
            push_arg(&mut args, "uid", uid);
            push_arg(&mut args, "joules", joules);
        }
        TelemetryEvent::BatteryDrain {
            joules,
            remaining_percent,
        } => {
            push_arg(&mut args, "joules", joules);
            push_arg(&mut args, "remaining_percent", remaining_percent);
        }
        TelemetryEvent::KernelStats {
            queue_depth,
            binder_transactions,
            sched_utilization,
        } => {
            push_arg(&mut args, "queue_depth", queue_depth);
            push_arg(&mut args, "binder_transactions", binder_transactions);
            push_arg(&mut args, "sched_utilization", sched_utilization);
        }
    }
    args
}

fn write_args(out: &mut String, args: &[(String, String)]) {
    out.push_str("\"args\":{");
    for (index, (key, value)) in args.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{key}\":{value}"));
    }
    out.push('}');
}

/// Writes a Chrome trace-event file (the `trace.json` format Perfetto and
/// `chrome://tracing` load).
///
/// Two tracks are emitted:
///
/// * **pid 1 "simulated time"** — the deterministic event stream as
///   instant events, with attack periods as async begin/end pairs so each
///   attack renders as a bar from open to close.
/// * **pid 2 "host wall clock"** — completed spans of the instrumented
///   hot paths as complete (`"X"`) events with real durations, plus every
///   counter/gauge sample as a counter (`"C"`) event, so metrics render
///   as stacked time-series tracks alongside the spans that produced
///   them.
pub fn write_chrome_trace(recorder: &Recorder, out: &mut dyn Write) -> io::Result<()> {
    let mut body = String::from("{\"traceEvents\":[\n");
    body.push_str(
        "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"simulated time\"}},\n",
    );
    body.push_str(
        "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":2,\"tid\":0,\
         \"args\":{\"name\":\"host wall clock\"}},\n",
    );

    for record in recorder.events() {
        let name = record.event.label();
        let args = event_args(&record.event);
        match &record.event {
            TelemetryEvent::AttackOpened { id, kind, .. } => {
                body.push_str(&format!(
                    "{{\"ph\":\"b\",\"cat\":\"attack\",\"name\":\"attack:{}\",\
                     \"id\":{id},\"ts\":{},\"pid\":1,\"tid\":1,",
                    kind.replace('"', ""),
                    record.t_us
                ));
                write_args(&mut body, &args);
                body.push_str("},\n");
            }
            TelemetryEvent::AttackClosed { id, kind, .. } => {
                body.push_str(&format!(
                    "{{\"ph\":\"e\",\"cat\":\"attack\",\"name\":\"attack:{}\",\
                     \"id\":{id},\"ts\":{},\"pid\":1,\"tid\":1,",
                    kind.replace('"', ""),
                    record.t_us
                ));
                write_args(&mut body, &args);
                body.push_str("},\n");
            }
            _ => {
                body.push_str(&format!(
                    "{{\"ph\":\"i\",\"s\":\"t\",\"name\":\"{name}\",\
                     \"ts\":{},\"pid\":1,\"tid\":1,",
                    record.t_us
                ));
                write_args(&mut body, &args);
                body.push_str("},\n");
            }
        }
    }

    for span in recorder.spans() {
        body.push_str(&format!(
            "{{\"ph\":\"X\",\"name\":\"{}\",\"ts\":{},\"dur\":{},\
             \"pid\":2,\"tid\":1,\"args\":{{\"depth\":{}}}}},\n",
            span.name.replace('"', ""),
            span.start_us,
            span.dur_us,
            span.depth
        ));
    }

    for sample in recorder.samples() {
        body.push_str(&format!(
            "{{\"ph\":\"C\",\"name\":\"{}\",\"ts\":{},\
             \"pid\":2,\"tid\":1,\"args\":{{\"value\":{}}}}},\n",
            sample.name.replace('"', ""),
            sample.at_us,
            sample.value
        ));
    }

    // Trailing comma cleanup: the metadata lines guarantee at least one
    // entry, so strip the final ",\n".
    if body.ends_with(",\n") {
        body.truncate(body.len() - 2);
        body.push('\n');
    }
    body.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    out.write_all(body.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TelemetrySink;

    fn sample_recorder() -> Recorder {
        let recorder = Recorder::new();
        recorder.record_event(
            5,
            TelemetryEvent::AttackOpened {
                id: 1,
                kind: "ServiceBind".to_string(),
                attacker: 10_001,
            },
        );
        recorder.record_event(
            905,
            TelemetryEvent::AttackClosed {
                id: 1,
                kind: "ServiceBind".to_string(),
                attacker: 10_001,
                collateral_joules: 0.75,
            },
        );
        let span = recorder.span_enter("step");
        recorder.span_exit(span);
        recorder.counter_add("devices_completed", 1);
        recorder.gauge_set("queue_depth", 4.0);
        recorder
    }

    #[test]
    fn jsonl_round_trips() {
        let recorder = sample_recorder();
        let mut buffer = Vec::new();
        write_jsonl(&recorder, &mut buffer).expect("write");
        let text = String::from_utf8(buffer).expect("utf8");
        let replayed = read_jsonl(&text).expect("parse");
        assert_eq!(replayed, recorder.events());
    }

    #[test]
    fn chrome_trace_is_valid_json_with_spans() {
        let recorder = sample_recorder();
        let mut buffer = Vec::new();
        write_chrome_trace(&recorder, &mut buffer).expect("write");
        let text = String::from_utf8(buffer).expect("utf8");
        let value: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        let events = value["traceEvents"].as_array().expect("event array");
        assert!(events.iter().any(|event| event["ph"].as_str() == Some("X")));
        assert!(events.iter().any(|event| event["ph"].as_str() == Some("b")));
        assert!(events.iter().any(|event| event["ph"].as_str() == Some("e")));
    }

    #[test]
    fn chrome_trace_renders_metric_samples_as_counter_events() {
        let recorder = sample_recorder();
        let mut buffer = Vec::new();
        write_chrome_trace(&recorder, &mut buffer).expect("write");
        let text = String::from_utf8(buffer).expect("utf8");
        let value: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        let events = value["traceEvents"].as_array().expect("event array");
        let counters: Vec<_> = events
            .iter()
            .filter(|event| event["ph"].as_str() == Some("C"))
            .collect();
        assert_eq!(counters.len(), 2);
        let devices = counters
            .iter()
            .find(|event| event["name"].as_str() == Some("devices_completed"))
            .expect("counter track present");
        assert_eq!(devices["pid"].as_f64(), Some(2.0), "wall-clock track");
        assert_eq!(devices["args"]["value"].as_f64(), Some(1.0));
    }
}
