//! Structured tracing, metrics, and trace export for the E-Android
//! profiling pipeline.
//!
//! Every layer of the stack — the kernel simulation, the Android
//! framework, and the accounting core — reports what it is doing through a
//! [`TelemetrySink`]. The crate provides:
//!
//! * **Typed events** ([`TelemetryEvent`]): framework events, lifecycle
//!   transitions, attack open/close, per-interval attribution, battery
//!   drain ticks, and kernel statistics, all timestamped in simulated
//!   time so traces are deterministic per seed.
//! * **Metrics** (counters, gauges, fixed-bucket histograms) collected by
//!   the [`Recorder`].
//! * **Span timing** of hot paths, measured in host wall-clock time and
//!   kept separate from the deterministic event stream.
//! * **Exporters**: replayable JSONL ([`export::write_jsonl`]) and the
//!   Chrome trace-event format ([`export::write_chrome_trace`]) that
//!   `chrome://tracing` and Perfetto load directly, plus a human-readable
//!   [`TelemetrySummary`].
//!
//! The default sink ([`NoopSink`]) discards everything, so instrumented
//! code pays one virtual call (or less, behind [`TelemetrySink::enabled`])
//! when telemetry is off.
//!
//! ```
//! use ea_telemetry::{Recorder, TelemetryEvent, TelemetrySink};
//! use std::sync::Arc;
//!
//! let recorder = Arc::new(Recorder::new());
//! recorder.record_event(1_000, TelemetryEvent::BatteryDrain {
//!     joules: 0.5,
//!     remaining_percent: 99.9,
//! });
//! recorder.counter_add("events_processed_total", 1);
//! assert_eq!(recorder.events().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod export;
mod recorder;
mod sink;
mod summary;

pub use event::{TelemetryEvent, TraceRecord};
pub use recorder::{
    HistogramSnapshot, MetricSample, MetricsSnapshot, Recorder, SpanRecord, HISTOGRAM_BOUNDS,
};
pub use sink::{span, NoopSink, SinkHandle, SpanGuard, SpanId, TelemetrySink};
pub use summary::TelemetrySummary;
