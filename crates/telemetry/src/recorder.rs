//! The in-memory sink: collects events, metrics, and spans for export.

use crate::{SpanId, TelemetryEvent, TelemetrySink, TraceRecord};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Upper bounds (inclusive) of the fixed histogram buckets, chosen for
/// microsecond-scale latencies; the final implicit bucket is `+inf`.
pub const HISTOGRAM_BOUNDS: [f64; 16] = [
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0,
    25_000.0, 50_000.0, 100_000.0,
];

#[derive(Debug, Clone)]
struct Histogram {
    /// One count per bound in [`HISTOGRAM_BOUNDS`], plus the overflow
    /// bucket at the end.
    counts: [u64; HISTOGRAM_BOUNDS.len() + 1],
    sum: f64,
    total: u64,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            counts: [0; HISTOGRAM_BOUNDS.len() + 1],
            sum: 0.0,
            total: 0,
        }
    }

    fn observe(&mut self, value: f64) {
        let bucket = HISTOGRAM_BOUNDS
            .iter()
            .position(|bound| value <= *bound)
            .unwrap_or(HISTOGRAM_BOUNDS.len());
        self.counts[bucket] += 1;
        self.sum += value;
        self.total += 1;
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts; index `i` counts observations `<=
    /// HISTOGRAM_BOUNDS[i]`, the final entry counts the overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

/// Point-in-time copy of every metric the recorder holds.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Monotone counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-written gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// One timestamped counter or gauge write, kept so exporters can render
/// metric *time series* (Chrome-trace `"C"` counter tracks) rather than
/// only final totals.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Metric name as passed to `counter_add` / `gauge_set`.
    pub name: String,
    /// Offset from recorder creation, host wall clock, microseconds.
    pub at_us: u64,
    /// Counter value *after* the add, or the gauge value written.
    pub value: f64,
}

/// One completed wall-clock span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name, e.g. `Profiler::step`.
    pub name: String,
    /// Start offset from recorder creation, host wall clock, microseconds.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Nesting depth at entry (0 = outermost).
    pub depth: usize,
}

#[derive(Debug)]
struct OpenSpan {
    id: SpanId,
    name: String,
    start: Instant,
    depth: usize,
}

#[derive(Default)]
struct MetricsState {
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Collects everything the pipeline emits; the sink used by tests, bench
/// binaries, and the trace-export example.
///
/// Events, gauges, and histograms are guarded by short-lived mutexes;
/// counters take the mutex once per name and are lock-free atomics after
/// that. Span timestamps come from the host wall clock and are kept out
/// of the deterministic event stream.
pub struct Recorder {
    epoch: Instant,
    events: Mutex<Vec<TraceRecord>>,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    metrics: Mutex<MetricsState>,
    samples: Mutex<Vec<MetricSample>>,
    open_spans: Mutex<Vec<OpenSpan>>,
    finished_spans: Mutex<Vec<SpanRecord>>,
    next_span: AtomicU64,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// An empty recorder; the wall-clock epoch for spans starts now.
    pub fn new() -> Self {
        Recorder {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
            counters: Mutex::new(BTreeMap::new()),
            metrics: Mutex::new(MetricsState::default()),
            samples: Mutex::new(Vec::new()),
            open_spans: Mutex::new(Vec::new()),
            finished_spans: Mutex::new(Vec::new()),
            next_span: AtomicU64::new(1),
        }
    }

    /// Handle to the named counter; increments through it skip the map
    /// lookup entirely.
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        let mut counters = self.counters.lock().expect("counter registry poisoned");
        counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone()
    }

    /// All events recorded so far, in emission order.
    pub fn events(&self) -> Vec<TraceRecord> {
        self.events.lock().expect("event buffer poisoned").clone()
    }

    /// All counter/gauge samples so far, in write order.
    pub fn samples(&self) -> Vec<MetricSample> {
        self.samples.lock().expect("sample buffer poisoned").clone()
    }

    /// Timestamps and stores one metric sample.
    fn sample(&self, name: &str, value: f64) {
        let at_us = self.epoch.elapsed().as_micros() as u64;
        self.samples
            .lock()
            .expect("sample buffer poisoned")
            .push(MetricSample {
                name: name.to_string(),
                at_us,
                value,
            });
    }

    /// All completed spans so far, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.finished_spans
            .lock()
            .expect("span buffer poisoned")
            .clone()
    }

    /// Snapshot of every counter, gauge, and histogram.
    pub fn metrics(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("counter registry poisoned")
            .iter()
            .map(|(name, value)| (name.clone(), value.load(Ordering::Relaxed)))
            .collect();
        let metrics = self.metrics.lock().expect("metrics poisoned");
        MetricsSnapshot {
            counters,
            gauges: metrics.gauges.clone(),
            histograms: metrics
                .histograms
                .iter()
                .map(|(name, histogram)| {
                    (
                        name.clone(),
                        HistogramSnapshot {
                            counts: histogram.counts.to_vec(),
                            sum: histogram.sum,
                            count: histogram.total,
                        },
                    )
                })
                .collect(),
        }
    }
}

impl TelemetrySink for Recorder {
    fn record_event(&self, t_us: u64, event: TelemetryEvent) {
        // Bookkeeping counters increment directly (not via `counter_add`)
        // so the per-event totals do not flood the sampled time series.
        self.counter("events_processed_total")
            .fetch_add(1, Ordering::Relaxed);
        self.counter(&format!("events_{}_total", event.label()))
            .fetch_add(1, Ordering::Relaxed);
        self.events
            .lock()
            .expect("event buffer poisoned")
            .push(TraceRecord { t_us, event });
    }

    fn record_events(&self, t_us: u64, events: &[TelemetryEvent]) {
        if events.is_empty() {
            return;
        }
        self.counter("events_processed_total")
            .fetch_add(events.len() as u64, Ordering::Relaxed);
        // One formatted name + counter bump per *distinct* label in the
        // batch, instead of a heap-allocating `format!` per event. A step
        // emits at most a handful of labels, so a linear scan beats a map.
        let mut labels: Vec<(&'static str, u64)> = Vec::new();
        for event in events {
            let label = event.label();
            match labels.iter_mut().find(|(seen, _)| *seen == label) {
                Some((_, count)) => *count += 1,
                None => labels.push((label, 1)),
            }
        }
        for (label, count) in labels {
            self.counter(&format!("events_{label}_total"))
                .fetch_add(count, Ordering::Relaxed);
        }
        let mut buffer = self.events.lock().expect("event buffer poisoned");
        buffer.reserve(events.len());
        buffer.extend(events.iter().map(|event| TraceRecord {
            t_us,
            event: event.clone(),
        }));
    }

    fn counter_add(&self, name: &str, delta: u64) {
        let after = self.counter(name).fetch_add(delta, Ordering::Relaxed) + delta;
        self.sample(name, after as f64);
    }

    fn gauge_set(&self, name: &str, value: f64) {
        {
            let mut metrics = self.metrics.lock().expect("metrics poisoned");
            metrics.gauges.insert(name.to_string(), value);
        }
        self.sample(name, value);
    }

    fn observe(&self, name: &str, value: f64) {
        let mut metrics = self.metrics.lock().expect("metrics poisoned");
        metrics
            .histograms
            .entry(name.to_string())
            .or_insert_with(Histogram::new)
            .observe(value);
    }

    fn span_enter(&self, name: &str) -> SpanId {
        let id = SpanId(self.next_span.fetch_add(1, Ordering::Relaxed));
        let mut open = self.open_spans.lock().expect("span stack poisoned");
        let depth = open.len();
        open.push(OpenSpan {
            id,
            name: name.to_string(),
            start: Instant::now(),
            depth,
        });
        id
    }

    fn span_exit(&self, id: SpanId) {
        let mut open = self.open_spans.lock().expect("span stack poisoned");
        let Some(index) = open.iter().rposition(|span| span.id == id) else {
            return;
        };
        let span = open.remove(index);
        drop(open);
        let end = Instant::now();
        let start_us = span.start.duration_since(self.epoch).as_micros() as u64;
        let dur_us = end.duration_since(span.start).as_micros() as u64;
        let record = SpanRecord {
            name: span.name,
            start_us,
            dur_us,
            depth: span.depth,
        };
        self.observe(&format!("span_us_{}", record.name), record.dur_us as f64);
        self.finished_spans
            .lock()
            .expect("span buffer poisoned")
            .push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let recorder = Recorder::new();
        recorder.counter_add("x", 2);
        recorder.counter_add("x", 3);
        assert_eq!(recorder.metrics().counters["x"], 5);
    }

    #[test]
    fn events_count_themselves() {
        let recorder = Recorder::new();
        recorder.record_event(
            10,
            TelemetryEvent::Attribution {
                uid: 10_001,
                joules: 0.25,
            },
        );
        let metrics = recorder.metrics();
        assert_eq!(metrics.counters["events_processed_total"], 1);
        assert_eq!(metrics.counters["events_attribution_total"], 1);
        assert_eq!(recorder.events().len(), 1);
    }

    #[test]
    fn batched_events_match_singles_byte_for_byte() {
        let batch = [
            TelemetryEvent::Attribution {
                uid: 10_001,
                joules: 0.25,
            },
            TelemetryEvent::Attribution {
                uid: 10_002,
                joules: 0.75,
            },
            TelemetryEvent::BatteryDrain {
                joules: 1.0,
                remaining_percent: 99.5,
            },
        ];
        let singles = Recorder::new();
        for event in &batch {
            singles.record_event(40, event.clone());
        }
        let batched = Recorder::new();
        batched.record_events(40, &batch);
        assert_eq!(singles.events(), batched.events());
        assert_eq!(singles.metrics().counters, batched.metrics().counters);
        let empty = Recorder::new();
        empty.record_events(40, &[]);
        assert!(empty.events().is_empty());
        assert!(empty.metrics().counters.is_empty());
    }

    #[test]
    fn counter_and_gauge_writes_leave_samples() {
        let recorder = Recorder::new();
        recorder.counter_add("requests", 2);
        recorder.counter_add("requests", 3);
        recorder.gauge_set("depth", 7.5);
        let samples = recorder.samples();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].name, "requests");
        assert_eq!(samples[0].value, 2.0, "post-add counter value");
        assert_eq!(samples[1].value, 5.0, "cumulative, not the delta");
        assert_eq!(samples[2].name, "depth");
        assert_eq!(samples[2].value, 7.5);
        assert!(samples.windows(2).all(|w| w[0].at_us <= w[1].at_us));
    }

    #[test]
    fn event_bookkeeping_counters_do_not_flood_samples() {
        let recorder = Recorder::new();
        recorder.record_event(
            10,
            TelemetryEvent::Attribution {
                uid: 10_001,
                joules: 0.25,
            },
        );
        assert_eq!(recorder.metrics().counters["events_processed_total"], 1);
        assert!(
            recorder.samples().is_empty(),
            "per-event totals stay out of the time series"
        );
    }

    #[test]
    fn spans_nest_and_complete() {
        let recorder = Recorder::new();
        let outer = recorder.span_enter("outer");
        let inner = recorder.span_enter("inner");
        recorder.span_exit(inner);
        recorder.span_exit(outer);
        let spans = recorder.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[0].depth, 1);
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[1].depth, 0);
    }

    #[test]
    fn histogram_counts_sum_to_total() {
        let recorder = Recorder::new();
        for value in [0.5, 3.0, 80.0, 1e9] {
            recorder.observe("h", value);
        }
        let snapshot = &recorder.metrics().histograms["h"];
        assert_eq!(snapshot.count, 4);
        assert_eq!(snapshot.counts.iter().sum::<u64>(), 4);
        // 1e9 lands in the overflow bucket.
        assert_eq!(*snapshot.counts.last().expect("overflow bucket"), 1);
    }
}
