//! The sink trait instrumented code talks to, and the no-op default.

use std::fmt;
use std::sync::Arc;

use crate::TelemetryEvent;

/// Identifies one entered span; `SpanId::NONE` marks a span the sink
/// declined to time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span, returned by disabled sinks.
    pub const NONE: SpanId = SpanId(0);
}

/// Receiver for everything the instrumented pipeline reports.
///
/// Implementations must be thread-safe: the profiling pipeline itself is
/// single-threaded, but sinks are shared as `Arc<dyn TelemetrySink>` and
/// tests read while scenarios write.
pub trait TelemetrySink: Send + Sync {
    /// Whether the sink wants data at all. Call sites may skip building
    /// event payloads when this is `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Records a structured event at simulated time `t_us` (microseconds).
    fn record_event(&self, t_us: u64, event: TelemetryEvent);

    /// Records a batch of events sharing one timestamp, in slice order.
    ///
    /// Semantically identical to calling
    /// [`record_event`](TelemetrySink::record_event) once per event; sinks
    /// may override to amortize per-event locking and bookkeeping. Hot
    /// paths stage a step's events and flush them through here once.
    fn record_events(&self, t_us: u64, events: &[TelemetryEvent]) {
        for event in events {
            self.record_event(t_us, event.clone());
        }
    }

    /// Adds `delta` to the named monotone counter.
    fn counter_add(&self, name: &str, delta: u64);

    /// Sets the named gauge to `value`.
    fn gauge_set(&self, name: &str, value: f64);

    /// Records one observation into the named histogram.
    fn observe(&self, name: &str, value: f64);

    /// Opens a wall-clock span; pair with [`TelemetrySink::span_exit`].
    fn span_enter(&self, name: &str) -> SpanId;

    /// Closes a span returned by [`TelemetrySink::span_enter`].
    fn span_exit(&self, id: SpanId);
}

/// Discards everything; the default sink, so uninstrumented runs pay only
/// a virtual call per emission site.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record_event(&self, _t_us: u64, _event: TelemetryEvent) {}

    fn record_events(&self, _t_us: u64, _events: &[TelemetryEvent]) {}

    fn counter_add(&self, _name: &str, _delta: u64) {}

    fn gauge_set(&self, _name: &str, _value: f64) {}

    fn observe(&self, _name: &str, _value: f64) {}

    fn span_enter(&self, _name: &str) -> SpanId {
        SpanId::NONE
    }

    fn span_exit(&self, _id: SpanId) {}
}

/// A cheap, cloneable handle to a shared sink.
///
/// This is the form instrumented structs embed: it defaults to
/// [`NoopSink`], implements `Debug` (so host structs keep deriving it),
/// and clones by bumping a reference count. The instrumented pipeline
/// checks [`SinkHandle::enabled`] before building event payloads, so the
/// no-op default costs one virtual call per emission site.
#[derive(Clone)]
pub struct SinkHandle(Arc<dyn TelemetrySink>);

impl SinkHandle {
    /// Wraps a shared sink.
    pub fn new(sink: Arc<dyn TelemetrySink>) -> Self {
        SinkHandle(sink)
    }

    /// The discard-everything default.
    pub fn noop() -> Self {
        SinkHandle(Arc::new(NoopSink))
    }

    /// Whether the underlying sink wants data.
    pub fn enabled(&self) -> bool {
        self.0.enabled()
    }

    /// The underlying sink.
    pub fn sink(&self) -> &dyn TelemetrySink {
        &*self.0
    }
}

impl Default for SinkHandle {
    fn default() -> Self {
        SinkHandle::noop()
    }
}

impl fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SinkHandle")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl std::ops::Deref for SinkHandle {
    type Target = dyn TelemetrySink;

    fn deref(&self) -> &Self::Target {
        &*self.0
    }
}

/// Closes its span on drop, so hot paths time themselves with one line.
pub struct SpanGuard<'a> {
    sink: &'a dyn TelemetrySink,
    id: SpanId,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if self.id != SpanId::NONE {
            self.sink.span_exit(self.id);
        }
    }
}

/// Opens a named span on `sink`, closed when the guard drops.
pub fn span<'a>(sink: &'a dyn TelemetrySink, name: &str) -> SpanGuard<'a> {
    let id = if sink.enabled() {
        sink.span_enter(name)
    } else {
        SpanId::NONE
    };
    SpanGuard { sink, id }
}
