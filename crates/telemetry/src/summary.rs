//! Human-readable digest of a recorded session.

use crate::{MetricsSnapshot, Recorder, SpanRecord, HISTOGRAM_BOUNDS};
use std::collections::BTreeMap;
use std::fmt;

/// A printable digest: event counts, counters, gauges, histogram
/// quantiles, and per-span aggregate timing.
#[derive(Debug, Clone)]
pub struct TelemetrySummary {
    metrics: MetricsSnapshot,
    span_count: usize,
    span_totals: BTreeMap<String, (u64, u64)>,
    event_count: usize,
}

impl TelemetrySummary {
    /// Digests everything `recorder` has collected so far.
    pub fn from_recorder(recorder: &Recorder) -> Self {
        let mut span_totals: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        let spans = recorder.spans();
        for SpanRecord { name, dur_us, .. } in &spans {
            let entry = span_totals.entry(name.clone()).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += dur_us;
        }
        TelemetrySummary {
            metrics: recorder.metrics(),
            span_count: spans.len(),
            span_totals,
            event_count: recorder.events().len(),
        }
    }

    /// Total number of structured events recorded.
    pub fn event_count(&self) -> usize {
        self.event_count
    }

    /// Total number of completed spans.
    pub fn span_count(&self) -> usize {
        self.span_count
    }
}

/// Approximate quantile from fixed-bucket counts: the upper bound of the
/// bucket containing the q-th observation.
fn bucket_quantile(counts: &[u64], total: u64, q: f64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let rank = (q * total as f64).ceil() as u64;
    let mut seen = 0u64;
    for (index, count) in counts.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return HISTOGRAM_BOUNDS
                .get(index)
                .copied()
                .unwrap_or(f64::INFINITY);
        }
    }
    f64::INFINITY
}

impl fmt::Display for TelemetrySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "telemetry summary")?;
        writeln!(
            f,
            "  events: {} recorded, {} spans completed",
            self.event_count, self.span_count
        )?;
        if !self.metrics.counters.is_empty() {
            writeln!(f, "  counters:")?;
            for (name, value) in &self.metrics.counters {
                writeln!(f, "    {name} = {value}")?;
            }
        }
        if !self.metrics.gauges.is_empty() {
            writeln!(f, "  gauges:")?;
            for (name, value) in &self.metrics.gauges {
                writeln!(f, "    {name} = {value:.3}")?;
            }
        }
        if !self.metrics.histograms.is_empty() {
            writeln!(f, "  histograms (approx p50 / p95 over bucket bounds):")?;
            for (name, histogram) in &self.metrics.histograms {
                let p50 = bucket_quantile(&histogram.counts, histogram.count, 0.50);
                let p95 = bucket_quantile(&histogram.counts, histogram.count, 0.95);
                writeln!(
                    f,
                    "    {name}: n={} mean={:.1} p50<={p50} p95<={p95}",
                    histogram.count,
                    if histogram.count > 0 {
                        histogram.sum / histogram.count as f64
                    } else {
                        0.0
                    },
                )?;
            }
        }
        if !self.span_totals.is_empty() {
            writeln!(f, "  spans:")?;
            for (name, (count, total_us)) in &self.span_totals {
                writeln!(
                    f,
                    "    {name}: {count} calls, {:.3} ms total",
                    *total_us as f64 / 1_000.0
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TelemetryEvent, TelemetrySink};

    #[test]
    fn summary_renders_all_sections() {
        let recorder = Recorder::new();
        recorder.record_event(
            1,
            TelemetryEvent::BatteryDrain {
                joules: 0.1,
                remaining_percent: 99.0,
            },
        );
        recorder.gauge_set("attacks_open", 2.0);
        recorder.observe("attribution_interval_us", 12.0);
        let span = recorder.span_enter("step");
        recorder.span_exit(span);

        let summary = TelemetrySummary::from_recorder(&recorder);
        let text = summary.to_string();
        assert!(text.contains("events_processed_total = 1"));
        assert!(text.contains("attacks_open = 2.000"));
        assert!(text.contains("attribution_interval_us"));
        assert!(text.contains("step: 1 calls"));
        assert_eq!(summary.event_count(), 1);
        assert_eq!(summary.span_count(), 1);
    }

    #[test]
    fn quantiles_pick_bucket_bounds() {
        let mut counts = vec![0u64; HISTOGRAM_BOUNDS.len() + 1];
        counts[2] = 10; // all observations <= 5.0
        assert_eq!(bucket_quantile(&counts, 10, 0.5), 5.0);
        assert_eq!(bucket_quantile(&counts, 10, 0.95), 5.0);
        assert_eq!(bucket_quantile(&counts, 0, 0.5), 0.0);
    }
}
