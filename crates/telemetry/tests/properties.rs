//! Property-based tests of the metrics registry.

use ea_telemetry::{Recorder, TelemetrySink};
use proptest::prelude::*;

proptest! {
    /// Counters are monotone: after every `counter_add` the visible value
    /// never decreases, and the final value is the exact sum of deltas.
    #[test]
    fn counters_are_monotone(deltas in proptest::collection::vec(0u64..1_000_000, 1..64)) {
        let recorder = Recorder::new();
        let mut previous = 0u64;
        let mut expected = 0u64;
        for delta in &deltas {
            recorder.counter_add("events_processed_total", *delta);
            expected += delta;
            let current = recorder.metrics().counters["events_processed_total"];
            prop_assert!(current >= previous, "counter regressed: {previous} -> {current}");
            previous = current;
        }
        prop_assert_eq!(previous, expected);
    }

    /// Histogram bucket counts always sum to the number of observations,
    /// whatever the values (including the +inf overflow bucket).
    #[test]
    fn histogram_buckets_sum_to_sample_count(
        samples in proptest::collection::vec(0.0f64..1.0e7, 0..128),
    ) {
        let recorder = Recorder::new();
        for sample in &samples {
            recorder.observe("attribution_interval_us", *sample);
        }
        let metrics = recorder.metrics();
        match metrics.histograms.get("attribution_interval_us") {
            None => prop_assert!(samples.is_empty()),
            Some(snapshot) => {
                prop_assert_eq!(snapshot.count, samples.len() as u64);
                prop_assert_eq!(snapshot.counts.iter().sum::<u64>(), snapshot.count);
            }
        }
    }

    /// Gauges hold the last written value regardless of write order.
    #[test]
    fn gauges_keep_last_write(values in proptest::collection::vec(-1.0e6f64..1.0e6, 1..32)) {
        let recorder = Recorder::new();
        for value in &values {
            recorder.gauge_set("battery_percent", *value);
        }
        let last = *values.last().expect("non-empty");
        prop_assert_eq!(recorder.metrics().gauges["battery_percent"], last);
    }
}
