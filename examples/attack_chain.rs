//! Attack chains: reproduce the paper's Figures 6 and 7 — a multi-
//! collateral attack and a hybrid chain (A binds B, B starts C, C attacks
//! the screen) — and watch Algorithm 1 propagate responsibility.
//!
//! Run with: `cargo run --example attack_chain`

use e_android::core::{CollateralGraph, Entity};
use e_android::power::Energy;
use e_android::sim::Uid;

fn main() {
    let a = Uid::from_raw(10_000);
    let b = Uid::from_raw(10_001);
    let c = Uid::from_raw(10_002);
    let name = |uid: Uid| match uid.as_raw() {
        10_000 => "A",
        10_001 => "B",
        _ => "C",
    };

    println!("== Figure 6: multi-collateral attack (A binds, starts, interrupts B) ==");
    let mut graph = CollateralGraph::new();
    let bind = graph.begin(a, Entity::App(b), true);
    let start = graph.begin(a, Entity::App(b), false);
    let interrupt = graph.begin(a, Entity::App(b), false);
    println!("live links A→B: {}", graph.links(a, Entity::App(b)));

    graph.accrue(Entity::App(b), Energy::from_joules(12.0));
    println!(
        "B burned 12 J; A charged once, not three times: {:.1} J",
        graph.collateral_total(a).as_joules()
    );

    graph.end(&start);
    graph.end(&interrupt);
    graph.accrue(Entity::App(b), Energy::from_joules(3.0));
    println!(
        "two of three attacks over, the bind still links them: {:.1} J",
        graph.collateral_total(a).as_joules()
    );
    graph.end(&bind);
    graph.accrue(Entity::App(b), Energy::from_joules(100.0));
    println!(
        "all over — relation broken, no further charge: {:.1} J",
        graph.collateral_total(a).as_joules()
    );

    println!();
    println!("== Figure 7: hybrid chain (A binds B; B starts C; C raises brightness) ==");
    let mut graph = CollateralGraph::new();
    graph.begin(a, Entity::App(b), true);
    graph.begin(b, Entity::App(c), false);
    let screen = graph.begin(c, Entity::Screen, false);

    println!("after the chain forms:");
    for host in [a, b, c] {
        let rows: Vec<String> = graph
            .collateral_of(host)
            .iter()
            .map(|(entity, _)| match entity {
                Entity::App(uid) => name(*uid).to_string(),
                Entity::Screen => "screen".to_string(),
                Entity::System => "system".to_string(),
            })
            .collect();
        println!("  {}'s map: [{}]", name(host), rows.join(", "));
    }

    graph.accrue(Entity::Screen, Energy::from_joules(9.0));
    graph.accrue(Entity::App(c), Energy::from_joules(4.0));
    graph.accrue(Entity::App(b), Energy::from_joules(2.0));
    println!();
    println!("after C's screen attack burns 9 J, C burns 4 J, B burns 2 J:");
    for host in [a, b, c] {
        println!(
            "  {} is responsible for {:.1} J of collateral energy",
            name(host),
            graph.collateral_total(host).as_joules()
        );
    }

    // The user resets brightness: the screen attack ends; the app chain
    // lives on.
    graph.end(&screen);
    graph.accrue(Entity::Screen, Energy::from_joules(50.0));
    println!();
    println!(
        "user fixed the brightness — screen no longer charged to A: {:.1} J",
        graph.collateral_total(a).as_joules()
    );
}
