//! Battery marathon: replay the paper's Figure 3 depletion race — five
//! device configurations, screen forced on by a wakelock, run until the
//! 2100 mAh pack dies.
//!
//! Run with: `cargo run --release --example battery_marathon`

use e_android::apps::{run_depletion, DepletionCase};

fn main() {
    println!("Nexus-4-class pack (2100 mAh @ 3.8 V), screen forced on by wakelock.");
    println!();

    let mut results: Vec<(&str, f64)> = Vec::new();
    for case in DepletionCase::ALL {
        let curve = run_depletion(case, 24);
        // A coarse terminal sparkline of the discharge curve.
        let spark: String = (0..30)
            .map(|i| {
                let hour = curve.lifetime_hours * i as f64 / 29.0;
                let percent = curve
                    .points
                    .iter()
                    .take_while(|p| p.hours <= hour)
                    .last()
                    .map(|p| p.percent)
                    .unwrap_or(100.0);
                match percent as u32 {
                    76..=100 => '█',
                    51..=75 => '▓',
                    26..=50 => '▒',
                    1..=25 => '░',
                    _ => ' ',
                }
            })
            .collect();
        println!(
            "{:<16} {spark}  dead at {:>5.1} h",
            curve.label, curve.lifetime_hours
        );
        results.push((curve.label, curve.lifetime_hours));
    }

    println!();
    let baseline = results
        .iter()
        .find(|(label, _)| *label == "Brightness_low")
        .map(|(_, h)| *h)
        .unwrap();
    for (label, hours) in &results {
        if *label != "Brightness_low" {
            println!(
                "{label:<16} cut battery life by {:>4.1} h ({:.0}% shorter than baseline)",
                baseline - hours,
                100.0 * (baseline - hours) / baseline
            );
        }
    }
}
