//! Corpus audit: how common are the collateral-attack preconditions in the
//! wild? Reproduces the paper's Figure 2 sweep over a 1,124-app synthetic
//! Play corpus, then drills into the most exposed categories.
//!
//! Run with: `cargo run --example corpus_audit`

use e_android::corpus::{analyze, generate_corpus, CorpusConfig};

fn main() {
    let corpus = generate_corpus(&CorpusConfig::paper(), 2_017);
    let stats = analyze(&corpus);

    println!("inspected {} manifests across 28 categories", stats.total);
    println!();
    let bar = |percent: f64| "#".repeat((percent / 2.5) as usize);
    println!(
        "exported component  {:>5.1}%  {}",
        stats.exported_percent(),
        bar(stats.exported_percent())
    );
    println!(
        "WAKE_LOCK           {:>5.1}%  {}",
        stats.wake_lock_percent(),
        bar(stats.wake_lock_percent())
    );
    println!(
        "WRITE_SETTINGS      {:>5.1}%  {}",
        stats.write_settings_percent(),
        bar(stats.write_settings_percent())
    );

    // Which categories are the softest targets for each vector?
    println!();
    println!("most exposed categories (fully attackable = all three preconditions):");
    let mut rows: Vec<(&String, f64)> = stats
        .per_category
        .iter()
        .filter(|(_, c)| c.total >= 20)
        .map(|(name, c)| {
            let score = (c.exported as f64 / c.total as f64)
                * (c.wake_lock as f64 / c.total as f64)
                * (c.write_settings as f64 / c.total as f64);
            (name, 100.0 * score)
        })
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (name, score) in rows.iter().take(5) {
        println!("  {name:<18} joint-precondition likelihood {score:>4.1}%");
    }

    println!();
    println!(
        "conclusion: with {:.0}% of apps exporting components, \"a collateral \
         energy attack can be launched by any apps\"",
        stats.exported_percent()
    );
}
