//! A randomized day of phone use, profiled by E-Android: collateral energy
//! shows up in perfectly normal behaviour too — the paper's point that
//! "normal apps could also induce a large amount of collateral energy
//! consumption".
//!
//! Run with: `cargo run --release --example day_in_the_life [seed]`

use e_android::apps::{run_workload, WorkloadConfig};
use e_android::core::{labels_from, BatteryView, Profiler, ScreenPolicy};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|value| value.parse().ok())
        .unwrap_or(7);
    let config = WorkloadConfig {
        seed,
        sessions: 10,
        mean_session_secs: 40,
        mean_idle_secs: 180,
    };

    let (android, profiler, summary) =
        run_workload(config, Profiler::eandroid(ScreenPolicy::SeparateEntity));

    println!(
        "simulated {:.1} min across {} sessions ({} user actions), battery at {:.1}%",
        summary.elapsed_secs / 60.0,
        summary.sessions,
        summary.actions,
        summary.final_percent
    );
    println!();

    let labels = labels_from(&android);
    let graph = profiler.collateral().expect("eandroid profiler");
    let view = BatteryView::eandroid(profiler.ledger(), graph, &labels);
    println!("{}", view.render_detailed());

    println!();
    println!("collateral relationships observed during the day:");
    let mut any = false;
    for host in graph.hosts() {
        let total = graph.collateral_total(host);
        if total.as_joules() > 0.0 {
            any = true;
            let label = labels
                .get(&host)
                .cloned()
                .unwrap_or_else(|| format!("uid:{}", host.as_raw()));
            println!("  {label:<26} drove {total} in other apps");
        }
    }
    if !any {
        println!("  (none this day — try another seed)");
    }
}
