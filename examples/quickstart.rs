//! Quickstart: profile the paper's motivating scenario.
//!
//! Bob films a video from inside the Message app. Stock Android blames the
//! Camera; E-Android also charges the Message app, which drove the Camera
//! through an intent.
//!
//! Run with: `cargo run --example quickstart`

use e_android::core::{labels_from, BatteryView, Entity, Profiler, ScreenPolicy};
use e_android::framework::{AndroidSystem, AppManifest, Intent, Permission};
use e_android::sim::SimDuration;

fn main() {
    // 1. Boot a simulated handset and install two apps.
    let mut android = AndroidSystem::new();
    let message = android.install(
        AppManifest::builder("com.example.message")
            .activity("Compose", true)
            .build(),
    );
    let camera = android.install(
        AppManifest::builder("com.example.camera")
            .activity("Record", true)
            .permission(Permission::Camera)
            .build(),
    );

    // 2. Attach an E-Android profiler (BatteryStats-style screen policy).
    let mut profiler = Profiler::eandroid(ScreenPolicy::SeparateEntity);

    // 3. Bob opens Message and chats for 30 seconds (touching the screen,
    //    so it never times out).
    android.user_launch("com.example.message").unwrap();
    for _ in 0..30 {
        android.note_user_activity();
        profiler.run(&mut android, SimDuration::from_secs(1));
    }

    // 4. Bob taps "record video": Message starts the Camera via an intent,
    //    and the Camera does the expensive work.
    android
        .start_activity(message, Intent::explicit("com.example.camera", "Record"))
        .unwrap();
    android.camera_start(camera, true).unwrap();
    android.set_extra_demand(camera, 0.35); // the video encoder
    for _ in 0..30 {
        android.note_user_activity();
        profiler.run(&mut android, SimDuration::from_secs(1));
    }
    android.camera_stop(camera);

    // 5. Read both views.
    let labels = labels_from(&android);
    println!("--- stock Android view (what Bob's battery screen shows) ---");
    println!("{}", BatteryView::android(profiler.ledger(), &labels));

    println!();
    println!("--- E-Android view (with collateral energy) ---");
    let graph = profiler.collateral().expect("eandroid profiler");
    let view = BatteryView::eandroid(profiler.ledger(), graph, &labels);
    println!("{view}");

    println!();
    println!(
        "Message charged with {:.1} J of collateral energy (Camera's work on its behalf)",
        graph.collateral_total(message).as_joules()
    );
    assert!(view.percent_of(Entity::App(message)) > 10.0);
}
