//! Trace export: run the paper's motivating message/camera scenario with
//! telemetry wired through every layer, then export the run in both trace
//! formats.
//!
//! Produces, in the current directory:
//!
//! * `trace_export.jsonl` — the replayable deterministic event stream
//!   (one JSON record per line, timestamps in simulated microseconds);
//! * `trace_export.trace.json` — Chrome trace-event format, loadable in
//!   `chrome://tracing` or Perfetto.
//!
//! A human-readable [`TelemetrySummary`] of the run is printed to stdout.
//!
//! Run with: `cargo run --example trace_export`

use std::fs::File;
use std::io::BufWriter;
use std::sync::Arc;

use e_android::apps::Scenario;
use e_android::core::{Profiler, ScreenPolicy};
use e_android::telemetry::{export, Recorder, TelemetrySummary};

fn main() -> std::io::Result<()> {
    // Bob films a video from inside the Message app; E-Android charges the
    // Message app with the Camera's collateral energy. Every framework
    // event, lifecycle transition, attack open/close, per-interval
    // attribution, battery tick, and kernel statistic lands in the
    // recorder.
    let recorder = Arc::new(Recorder::new());
    let profiler = Profiler::eandroid(ScreenPolicy::SeparateEntity);
    let output = Scenario::Scene1MessageVideo.run_traced(profiler, Arc::clone(&recorder) as Arc<_>);

    let jsonl_path = "trace_export.jsonl";
    let mut jsonl = BufWriter::new(File::create(jsonl_path)?);
    export::write_jsonl(&recorder, &mut jsonl)?;

    let chrome_path = "trace_export.trace.json";
    let mut chrome = BufWriter::new(File::create(chrome_path)?);
    export::write_chrome_trace(&recorder, &mut chrome)?;

    println!("wrote {jsonl_path} and {chrome_path}");
    println!();
    println!("{}", TelemetrySummary::from_recorder(&recorder));

    let events = recorder.events();
    let spans = recorder.spans();
    println!(
        "captured {} events and {} spans over {} of simulated time",
        events.len(),
        spans.len(),
        output.android.now()
    );
    assert!(!events.is_empty(), "traced run must record events");
    assert!(!spans.is_empty(), "traced run must record spans");
    Ok(())
}
