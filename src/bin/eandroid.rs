//! `eandroid` — command-line front end to the E-Android reproduction.
//!
//! ```text
//! eandroid scenario <name|all> [--mode android|eandroid] [--policy separate|foreground] [--routines] [--timeline] [--detect]
//! eandroid depletion [<case>|all] [--cap-hours N]
//! eandroid corpus [--seed N] [--size N] [--show-xml]
//! eandroid micro [--runs N]
//! eandroid antutu
//! eandroid workload [--seed N] [--sessions N]
//! eandroid fleet [--size N] [--seed N] [--jobs J] [--json] [--trace <base>] [--faults <rate|plan.json>] [--watch] [--heartbeat <path>] [--flight-recorder N] [--batch-kernel on|off] [--reference-scheduler] [--reference-lifecycle]
//! eandroid replay <report.json> [--healthy N] [--json]
//! eandroid metrics [--size N] [--seed N] [--jobs J] [--json]
//! eandroid serve [--size N] [--seed N] [--lanes L] [--socket <path>] [--hold] [--json] [--watch] [--heartbeat <path>]
//! eandroid query [--socket <path>] <ping|snapshot|window|report|shutdown>
//! eandroid chaos [--seed N] [--fleet-size N] [--quick] [--json]
//! eandroid list
//! eandroid help
//! ```
//!
//! Argument parsing is hand-rolled: the interface is small and the workspace
//! keeps its dependency set minimal (see DESIGN.md §6).

use std::process::ExitCode;

use e_android::apps::{run_depletion, DepletionCase, Scenario};
use e_android::chaos::FaultPlan;
use e_android::core::{
    labels_from, AttackTimeline, BatteryView, DetectorConfig, Profiler, ScreenPolicy,
};
use e_android::corpus::{analyze, generate_corpus, to_manifest_xml, CorpusConfig};
use e_android::fleet::{run_fleet_traced, FleetConfig};
use e_android::framework::AndroidSystem;
use e_android::lint::{render, BaselineDiff, LintSystem, Linter};
use e_android::metrics::{FleetObservatory, SnapshotEmitter};
use e_android::serve::{run_serve, Request, ServeConfig};
use e_android::telemetry::SinkHandle;

const HELP: &str = "\
eandroid — collateral-energy profiling on a simulated Android handset

USAGE:
    eandroid <command> [options]

COMMANDS:
    scenario <name|all>   run a paper scenario and print the battery views
        --mode android|eandroid    profiler mode (default eandroid)
        --policy separate|foreground
                                   screen policy (default separate)
        --routines                 also print the eprof-style routine split
        --timeline                 also print the attack-period timeline
        --detect                   also print the collateral-bug report
        --faults <rate|plan.json>  inject seeded faults (DESIGN.md \u{a7}11)
        --fault-seed N             fault-plan seed (default 2026)
        --reference-lifecycle      pre-reducer imperative lifecycle path
                                   (oracle path, same bytes)
    depletion [<case>|all]  replay the Figure 3 battery race
        --cap-hours N              stop after N simulated hours (default 24)
    corpus                  generate + analyze the Figure 2 corpus
        --seed N                   RNG seed (default 2017)
        --size N                   corpus size (default 1124)
        --show-xml                 print the first manifest as XML
    micro                   run the Figure 10 micro-benchmark matrix
        --runs N                   samples per op/config (default 50)
    antutu                  run the Figure 11 parity benchmark
    lint [demo|corpus]      static collateral-energy analysis (rules EA0001-EA0009)
        --json                     emit the report as JSON (schema v2)
        --baseline <report.json>   diff against a saved JSON report; exit
                                   non-zero iff new findings are introduced
        --rules                    list the rule registry and exit
        --seed N                   corpus RNG seed (default 2017)
        --size N                   corpus size (default 1124)
    workload                simulate a randomized day of phone use
        --seed N                   RNG seed (default 7)
        --sessions N               user sessions (default 10)
    fleet                   simulate a fleet of devices and aggregate
        --size N                   devices to simulate (default 64)
        --seed N                   fleet seed (default 2026)
        --jobs J                   worker threads (default: all cores)
        --json                     emit the deterministic report as JSON
        --trace <base>             export telemetry to <base>.jsonl + <base>.trace.json
        --inject-panic N           fault-inject a panic into device N
        --faults <rate|plan.json>  inject seeded faults into every device
        --watch                    live fleet-health line on stderr while running
        --heartbeat <path>         write JSONL health snapshots to <path>
        --flight-recorder N        keep the last N telemetry events per device,
                                   dumped into the report on device abandonment
        --batch-kernel on|off      struct-of-arrays power kernel (default on;
                                   off = per-device model structs, same bytes)
        --reference-scheduler      binary-heap event queue instead of the
                                   calendar queue (oracle path, same bytes)
        --reference-lifecycle      imperative lifecycle path without the
                                   intent log (oracle path, same bytes;
                                   crashed devices carry no replay bundle)
    replay <report.json>    re-execute every failure recorded in a fleet
                            report and verify it reproduces exactly
        --healthy N                also re-simulate N completed devices
                                   and diff them against their rows
        --json                     emit the replay verdicts as JSON
    metrics                 run a fleet and print its health snapshot
        --json                     one JSONL snapshot instead of Prometheus text
        (also accepts the fleet sizing/fault/watch/heartbeat flags above)
    serve                   stream the fleet through the ingest service
        --lanes L                  ingest lanes (default: all cores)
        --ring N                   SPSC ring capacity per lane (default 1024)
        --window N                 lane events per ingest window (default 64)
        --socket <path>            serve snapshot queries on a Unix socket
        --hold                     keep serving after the stream drains,
                                   until a shutdown query arrives
        (also accepts the fleet sizing/fault/watch/heartbeat flags above;
         the final report is byte-identical to `eandroid fleet`)
    query <op>              query a running serve instance; ops: ping,
                            snapshot, window, report, shutdown
        --socket <path>            the service's socket (required)
        --retries N                connection attempts (default 40)
        --retry-delay-ms N         pause between attempts (default 250)
    chaos                   run the deterministic fault-injection soak
        --seed N                   fault-plan seed (default 2026)
        --fleet-size N             devices in the fleet leg (default 64)
        --quick                    one moderate rate instead of the ladder
        --json                     emit the soak report as JSON
    list                    list scenario and depletion-case names
    help                    this text
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut args = args.iter().map(String::as_str);
    match args.next() {
        Some("scenario") => cmd_scenario(&args.collect::<Vec<_>>()),
        Some("depletion") => cmd_depletion(&args.collect::<Vec<_>>()),
        Some("corpus") => cmd_corpus(&args.collect::<Vec<_>>()),
        Some("micro") => cmd_micro(&args.collect::<Vec<_>>()),
        Some("antutu") => cmd_antutu(),
        Some("lint") => cmd_lint(&args.collect::<Vec<_>>()),
        Some("workload") => cmd_workload(&args.collect::<Vec<_>>()),
        Some("fleet") => cmd_fleet(&args.collect::<Vec<_>>()),
        Some("replay") => cmd_replay(&args.collect::<Vec<_>>()),
        Some("metrics") => cmd_metrics(&args.collect::<Vec<_>>()),
        Some("serve") => cmd_serve(&args.collect::<Vec<_>>()),
        Some("query") => cmd_query(&args.collect::<Vec<_>>()),
        Some("chaos") => cmd_chaos(&args.collect::<Vec<_>>()),
        Some("list") => {
            println!("scenarios:");
            for scenario in Scenario::ALL {
                println!("  {}", scenario.name());
            }
            println!("depletion cases:");
            for case in DepletionCase::ALL {
                println!("  {}", case.label());
            }
            ExitCode::SUCCESS
        }
        Some("help") | None => {
            print!("{HELP}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command: {other}\n");
            print!("{HELP}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &[&'a str], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|&arg| arg == flag)
        .and_then(|index| args.get(index + 1).copied())
}

fn has_flag(args: &[&str], flag: &str) -> bool {
    args.contains(&flag)
}

fn parse_policy(args: &[&str]) -> Result<ScreenPolicy, String> {
    match flag_value(args, "--policy") {
        None | Some("separate") => Ok(ScreenPolicy::SeparateEntity),
        Some("foreground") => Ok(ScreenPolicy::ForegroundApp),
        Some(other) => Err(format!("unknown policy: {other}")),
    }
}

fn cmd_scenario(args: &[&str]) -> ExitCode {
    let Some(&name) = args.first() else {
        eprintln!("scenario: missing name (try `eandroid list`)");
        return ExitCode::FAILURE;
    };
    let policy = match parse_policy(args) {
        Ok(policy) => policy,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let eandroid_mode = match flag_value(args, "--mode") {
        None | Some("eandroid") => true,
        Some("android") => false,
        Some(other) => {
            eprintln!("unknown mode: {other}");
            return ExitCode::FAILURE;
        }
    };

    let fault_seed: u64 = flag_value(args, "--fault-seed")
        .and_then(|value| value.parse().ok())
        .unwrap_or(2_026);
    let faults = match flag_value(args, "--faults") {
        Some(spec) => match FaultPlan::parse(spec, fault_seed) {
            Ok(plan) => Some(plan),
            Err(message) => {
                eprintln!("scenario: {message}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let selected: Vec<Scenario> = if name == "all" {
        Scenario::ALL.to_vec()
    } else {
        match Scenario::ALL.into_iter().find(|s| s.name() == name) {
            Some(scenario) => vec![scenario],
            None => {
                eprintln!("unknown scenario: {name} (try `eandroid list`)");
                return ExitCode::FAILURE;
            }
        }
    };

    for scenario in selected {
        let mut profiler = if eandroid_mode {
            Profiler::eandroid(policy)
        } else {
            Profiler::android(policy)
        };
        if has_flag(args, "--routines") {
            profiler = profiler.with_routine_accounting();
        }
        let mut android = AndroidSystem::new();
        if has_flag(args, "--reference-lifecycle") {
            android.set_reference_lifecycle(true);
        }
        let run = match &faults {
            Some(plan) => {
                // Lanes follow the scenario's position in `Scenario::ALL`
                // so `scenario all --faults R` matches `eandroid chaos`.
                let lane = Scenario::ALL
                    .iter()
                    .position(|s| s.name() == scenario.name())
                    .unwrap_or(0) as u64;
                android.attach_faults(plan.framework_faults(lane));
                scenario.run_with(android, profiler.with_chaos(plan.power_faults(lane)))
            }
            None => scenario.run_with(android, profiler),
        };
        let labels = labels_from(&run.android);

        println!("=== {} ===", scenario.name());
        let mut view = match run.profiler.collateral() {
            Some(graph) => BatteryView::eandroid(run.profiler.ledger(), graph, &labels),
            None => BatteryView::android(run.profiler.ledger(), &labels),
        };
        if let Some(chaos) = run.profiler.chaos() {
            view = view
                .with_degraded(&chaos.degraded_by_entity())
                .with_confidence(chaos.confidence());
        }
        println!("{view}");
        println!(
            "battery: {:.2}% remaining ({:.1} J drained)",
            run.profiler.battery().percent(),
            run.profiler.battery().drained().as_joules()
        );
        if faults.is_some() {
            let mut injected = 0;
            let mut detected = 0;
            if let Some(log) = run.android.fault_log() {
                injected += log.injected_total();
                detected += log.detected_total();
            }
            if let Some(chaos) = run.profiler.chaos() {
                injected += chaos.log().injected_total();
                detected += chaos.log().detected_total();
            }
            println!("faults: {injected} injected, {detected} detected/compensated");
        }

        if has_flag(args, "--timeline") {
            if let Some(monitor) = run.profiler.monitor() {
                println!("\nattack timeline:");
                print!(
                    "{}",
                    AttackTimeline::from_history(monitor.attack_history(), &labels).render()
                );
            }
        }
        if has_flag(args, "--detect") {
            if let Some(monitor) = run.profiler.monitor() {
                let findings = e_android::core::report(
                    run.profiler.ledger(),
                    monitor.graph(),
                    monitor.attack_history(),
                    &DetectorConfig::default(),
                );
                println!("\ncollateral-bug report:");
                for finding in findings {
                    let label = labels
                        .get(&finding.uid)
                        .cloned()
                        .unwrap_or_else(|| format!("uid:{}", finding.uid.as_raw()));
                    println!(
                        "  {label:<26} own {:>8} collateral {:>8} stealth {:>4.0}% flags {:?}",
                        finding.own.to_string(),
                        finding.collateral.to_string(),
                        100.0 * finding.stealth_ratio,
                        finding.flags
                    );
                }
            }
        }
        if has_flag(args, "--routines") {
            if let Some(routines) = run.profiler.routines() {
                println!("\nhottest routines:");
                for (uid, routine, energy) in routines.top(8) {
                    let label = labels
                        .get(&uid)
                        .cloned()
                        .unwrap_or_else(|| format!("uid:{}", uid.as_raw()));
                    println!("  {label:<26} {:<22} {energy}", routine.label());
                }
            }
        }
        println!();
    }
    ExitCode::SUCCESS
}

fn cmd_depletion(args: &[&str]) -> ExitCode {
    let cap_hours: u64 = flag_value(args, "--cap-hours")
        .and_then(|value| value.parse().ok())
        .unwrap_or(24);
    let selected: Vec<DepletionCase> = match args.first() {
        None | Some(&"all") => DepletionCase::ALL.to_vec(),
        Some(&name) if !name.starts_with("--") => {
            match DepletionCase::ALL.into_iter().find(|c| c.label() == name) {
                Some(case) => vec![case],
                None => {
                    eprintln!("unknown depletion case: {name} (try `eandroid list`)");
                    return ExitCode::FAILURE;
                }
            }
        }
        _ => DepletionCase::ALL.to_vec(),
    };
    for case in selected {
        let curve = run_depletion(case, cap_hours);
        println!(
            "{:<16} battery dead after {:>5.1} h",
            curve.label, curve.lifetime_hours
        );
    }
    ExitCode::SUCCESS
}

fn cmd_corpus(args: &[&str]) -> ExitCode {
    let seed: u64 = flag_value(args, "--seed")
        .and_then(|value| value.parse().ok())
        .unwrap_or(2_017);
    let size: usize = flag_value(args, "--size")
        .and_then(|value| value.parse().ok())
        .unwrap_or(1_124);
    let config = CorpusConfig {
        size,
        ..CorpusConfig::paper()
    };
    let corpus = generate_corpus(&config, seed);
    let stats = analyze(&corpus);
    println!("apps: {}", stats.total);
    println!("exported component: {:.1}%", stats.exported_percent());
    println!("WAKE_LOCK:          {:.1}%", stats.wake_lock_percent());
    println!("WRITE_SETTINGS:     {:.1}%", stats.write_settings_percent());
    if has_flag(args, "--show-xml") {
        if let Some(first) = corpus.first() {
            println!("\n{}", to_manifest_xml(first));
        }
    }
    ExitCode::SUCCESS
}

fn cmd_micro(args: &[&str]) -> ExitCode {
    let runs: usize = flag_value(args, "--runs")
        .and_then(|value| value.parse().ok())
        .unwrap_or(50);
    for result in ea_bench::run_micro_matrix(runs) {
        println!(
            "{:<22} {:<20} median {:>8.2} µs",
            result.op,
            result.config,
            result.stats.median as f64 / 1_000.0
        );
    }
    ExitCode::SUCCESS
}

fn cmd_workload(args: &[&str]) -> ExitCode {
    let seed: u64 = flag_value(args, "--seed")
        .and_then(|value| value.parse().ok())
        .unwrap_or(7);
    let sessions: usize = flag_value(args, "--sessions")
        .and_then(|value| value.parse().ok())
        .unwrap_or(10);
    let config = e_android::apps::WorkloadConfig {
        seed,
        sessions,
        ..e_android::apps::WorkloadConfig::default()
    };
    let (android, profiler, summary) =
        e_android::apps::run_workload(config, Profiler::eandroid(ScreenPolicy::SeparateEntity));
    println!(
        "{:.1} simulated minutes, {} actions, battery {:.1}%",
        summary.elapsed_secs / 60.0,
        summary.actions,
        summary.final_percent
    );
    let labels = labels_from(&android);
    let graph = profiler.collateral().expect("eandroid profiler");
    println!(
        "{}",
        BatteryView::eandroid(profiler.ledger(), graph, &labels)
    );
    ExitCode::SUCCESS
}

/// Builds a [`FleetConfig`] from the shared fleet/metrics flag set.
fn parse_fleet_config(command: &str, args: &[&str]) -> Result<FleetConfig, String> {
    let mut config = FleetConfig::default();
    if let Some(size) = flag_value(args, "--size").and_then(|value| value.parse().ok()) {
        config.size = size;
    }
    if let Some(seed) = flag_value(args, "--seed").and_then(|value| value.parse().ok()) {
        config.seed = seed;
    }
    if let Some(jobs) = flag_value(args, "--jobs").and_then(|value| value.parse().ok()) {
        config.jobs = jobs;
    }
    if let Some(index) = flag_value(args, "--inject-panic").and_then(|value| value.parse().ok()) {
        config.panic_devices.push(index);
    }
    if let Some(capacity) =
        flag_value(args, "--flight-recorder").and_then(|value| value.parse().ok())
    {
        config.flight_recorder = capacity;
    }
    if let Some(spec) = flag_value(args, "--faults") {
        match FaultPlan::parse(spec, config.seed) {
            Ok(plan) => config.faults = Some(plan),
            Err(message) => return Err(format!("{command}: {message}")),
        }
    }
    match flag_value(args, "--batch-kernel") {
        None | Some("on") => config.batch_kernel = true,
        Some("off") => config.batch_kernel = false,
        Some(other) => {
            return Err(format!(
                "{command}: --batch-kernel expects on|off, got {other}"
            ))
        }
    }
    if has_flag(args, "--reference-scheduler") {
        config.reference_scheduler = true;
    }
    if has_flag(args, "--reference-lifecycle") {
        config.reference_lifecycle = true;
    }
    Ok(config)
}

/// Runs the fleet with a live observatory attached and a sampler thread
/// feeding the shared [`SnapshotEmitter`] — the same snapshot path the
/// `serve` service uses, so `--watch` and `--heartbeat` render identical
/// numbers on both commands. A final snapshot is always taken after the
/// run, so even a run shorter than one sampling interval leaves one
/// heartbeat line.
fn run_fleet_with_observatory(
    config: &FleetConfig,
    sink: SinkHandle,
    emitter: &SnapshotEmitter<'_>,
) -> (
    e_android::fleet::FleetReport,
    e_android::fleet::FleetRunStats,
    e_android::metrics::MetricsSnapshot,
) {
    use std::sync::atomic::{AtomicBool, Ordering};

    let jobs = config.effective_jobs().max(1).min(config.size.max(1));
    let observatory = FleetObservatory::new(config.size, jobs);
    let done = AtomicBool::new(false);

    let (report, stats) = std::thread::scope(|scope| {
        let sampler = scope.spawn(|| {
            while !done.load(Ordering::Relaxed) {
                std::thread::sleep(std::time::Duration::from_millis(250));
                if done.load(Ordering::Relaxed) {
                    break;
                }
                emitter.emit(&observatory.snapshot(), false);
            }
        });
        let result = e_android::fleet::run_fleet_observed(config, sink, Some(&observatory));
        done.store(true, Ordering::Relaxed);
        if sampler.join().is_err() {
            eprintln!("fleet: snapshot sampler thread panicked");
        }
        result
    });
    let final_snapshot = observatory.snapshot();
    emitter.emit(&final_snapshot, true);
    (report, stats, final_snapshot)
}

fn cmd_fleet(args: &[&str]) -> ExitCode {
    let config = match parse_fleet_config("fleet", args) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let trace = flag_value(args, "--trace").map(ea_bench::TraceRequest::to_base);
    let sink = match &trace {
        Some(trace) => SinkHandle::new(trace.sink()),
        None => SinkHandle::noop(),
    };

    let watch = has_flag(args, "--watch");
    let mut heartbeat_file = match flag_value(args, "--heartbeat") {
        Some(path) => match std::fs::File::create(path) {
            Ok(file) => Some(file),
            Err(error) => {
                eprintln!("fleet: cannot create heartbeat file {path}: {error}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let (report, stats) = if watch || heartbeat_file.is_some() {
        let heartbeat = heartbeat_file
            .as_mut()
            .map(|file| file as &mut (dyn std::io::Write + Send));
        let emitter = SnapshotEmitter::new(watch, heartbeat);
        let (report, stats, _) = run_fleet_with_observatory(&config, sink, &emitter);
        (report, stats)
    } else {
        run_fleet_traced(&config, sink)
    };

    // The report is the deterministic artifact; wall-clock facts go to
    // stderr so `--json` output stays byte-identical across job counts.
    if has_flag(args, "--json") {
        print!("{}", e_android::fleet::render::to_json(&report));
    } else {
        print!("{}", e_android::fleet::render::to_text(&report));
    }
    eprintln!("{}", e_android::fleet::render::stats_line(&stats));
    if let Some(trace) = &trace {
        if let Err(error) = trace.finish() {
            eprintln!("fleet: failed to write trace files: {error}");
            return ExitCode::FAILURE;
        }
    }
    // Device failures are data, not a process error: the report carries
    // them and the run still succeeded.
    ExitCode::SUCCESS
}

/// `eandroid replay` — load a saved fleet report and re-execute every
/// recorded [`DeviceFailure`](e_android::fleet::DeviceFailure) from the
/// report's embedded replay config, diffing panic message, attempt
/// count, salvaged checkpoint, and the lifecycle intent-log tail against
/// the recorded bundle. `--healthy N` additionally re-simulates a strided
/// sample of completed devices as a divergence detector. Exits non-zero
/// on any mismatch: a divergence means nondeterminism, not noise.
fn cmd_replay(args: &[&str]) -> ExitCode {
    let path = match args.first() {
        Some(&arg) if !arg.starts_with("--") => arg,
        _ => {
            eprintln!("replay: missing report path (produce one with `eandroid fleet --json`)");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!("replay: cannot read {path}: {error}");
            return ExitCode::FAILURE;
        }
    };
    let report: e_android::fleet::FleetReport = match serde_json::from_str(&text) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("replay: {path} is not a fleet report: {error}");
            return ExitCode::FAILURE;
        }
    };
    let healthy: usize = flag_value(args, "--healthy")
        .and_then(|value| value.parse().ok())
        .unwrap_or(0);

    let verdicts = e_android::fleet::replay_report(&report, healthy);
    if has_flag(args, "--json") {
        match serde_json::to_string_pretty(&verdicts) {
            Ok(json) => println!("{json}"),
            Err(error) => {
                eprintln!("replay: failed to serialize verdicts: {error}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        for replay in &verdicts.failures {
            if replay.matched {
                println!(
                    "device {:>4}  failure reproduced ({} intents in the replayed log)",
                    replay.index, replay.replayed_intents
                );
            } else {
                println!("device {:>4}  failure DIVERGED", replay.index);
                for mismatch in &replay.mismatches {
                    println!("    {mismatch}");
                }
            }
        }
        for replay in &verdicts.healthy {
            if replay.matched {
                println!(
                    "device {:>4}  healthy, matches its recorded row",
                    replay.index
                );
            } else {
                println!("device {:>4}  healthy replay DIVERGED", replay.index);
                for mismatch in &replay.mismatches {
                    println!("    {mismatch}");
                }
            }
        }
        println!(
            "replayed {} device(s): {} failure(s), {} healthy",
            verdicts.replayed(),
            verdicts.failures.len(),
            verdicts.healthy.len()
        );
    }
    if verdicts.replayed() == 0 {
        eprintln!(
            "replay: report records no failures (add --healthy N to spot-check completed devices)"
        );
    }
    if verdicts.all_matched() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `eandroid metrics` — run a fleet under the observatory and print the
/// final health snapshot as Prometheus-style text (or one JSONL heartbeat
/// with `--json`). The deterministic report itself is discarded: this
/// command is the observability surface, `eandroid fleet` the report one.
fn cmd_metrics(args: &[&str]) -> ExitCode {
    let config = match parse_fleet_config("metrics", args) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let watch = has_flag(args, "--watch");
    let mut heartbeat_file = match flag_value(args, "--heartbeat") {
        Some(path) => match std::fs::File::create(path) {
            Ok(file) => Some(file),
            Err(error) => {
                eprintln!("metrics: cannot create heartbeat file {path}: {error}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let heartbeat = heartbeat_file
        .as_mut()
        .map(|file| file as &mut (dyn std::io::Write + Send));
    let emitter = SnapshotEmitter::new(watch, heartbeat);

    let (_report, stats, snapshot) =
        run_fleet_with_observatory(&config, SinkHandle::noop(), &emitter);
    if has_flag(args, "--json") {
        println!("{}", snapshot.to_jsonl());
    } else {
        print!("{}", snapshot.to_prometheus());
    }
    eprintln!("{}", e_android::fleet::render::stats_line(&stats));
    ExitCode::SUCCESS
}

/// `eandroid serve` — stream the configured fleet through the ingest
/// service and print the drained deterministic report, byte-identical
/// to `eandroid fleet` over the same seed/size at any `--lanes`.
fn cmd_serve(args: &[&str]) -> ExitCode {
    let fleet = match parse_fleet_config("serve", args) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let mut config = ServeConfig::new(fleet);
    if let Some(lanes) = flag_value(args, "--lanes").and_then(|value| value.parse().ok()) {
        config.lanes = lanes;
    }
    if let Some(capacity) = flag_value(args, "--ring").and_then(|value| value.parse().ok()) {
        config.ring_capacity = capacity;
    }
    if let Some(events) = flag_value(args, "--window").and_then(|value| value.parse().ok()) {
        config.window_events = events;
    }
    config.socket = flag_value(args, "--socket").map(std::path::PathBuf::from);
    config.hold = has_flag(args, "--hold");
    if config.hold && config.socket.is_none() {
        eprintln!("serve: --hold needs --socket (nothing to hold the service open for)");
        return ExitCode::FAILURE;
    }

    let watch = has_flag(args, "--watch");
    let mut heartbeat_file = match flag_value(args, "--heartbeat") {
        Some(path) => match std::fs::File::create(path) {
            Ok(file) => Some(file),
            Err(error) => {
                eprintln!("serve: cannot create heartbeat file {path}: {error}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let heartbeat = heartbeat_file
        .as_mut()
        .map(|file| file as &mut (dyn std::io::Write + Send));
    let emitter = SnapshotEmitter::new(watch, heartbeat);

    let (report, stats) = match run_serve(&config, Some(&emitter)) {
        Ok(result) => result,
        Err(error) => {
            eprintln!("serve: {error}");
            return ExitCode::FAILURE;
        }
    };
    if has_flag(args, "--json") {
        print!("{}", e_android::fleet::render::to_json(&report));
    } else {
        print!("{}", e_android::fleet::render::to_text(&report));
    }
    eprintln!("{}", e_android::serve::stats_line(&stats));
    ExitCode::SUCCESS
}

/// `eandroid query` — one request to a running serve instance; prints
/// the raw JSON response line.
fn cmd_query(args: &[&str]) -> ExitCode {
    let Some(socket) = flag_value(args, "--socket") else {
        eprintln!("query: --socket <path> is required");
        return ExitCode::FAILURE;
    };
    // First free-standing argument, skipping flags and their values.
    let value_flags = ["--socket", "--retries", "--retry-delay-ms"];
    let mut op = None;
    let mut iter = args.iter();
    while let Some(&arg) = iter.next() {
        if value_flags.contains(&arg) {
            iter.next();
        } else if !arg.starts_with("--") {
            op = Some(arg);
            break;
        }
    }
    let op = op.unwrap_or("snapshot");
    let request = match Request::parse(op) {
        Ok(request) => request,
        Err(message) => {
            eprintln!("query: {message}");
            return ExitCode::FAILURE;
        }
    };
    let retries: u32 = flag_value(args, "--retries")
        .and_then(|value| value.parse().ok())
        .unwrap_or(40);
    let delay_ms: u64 = flag_value(args, "--retry-delay-ms")
        .and_then(|value| value.parse().ok())
        .unwrap_or(250);
    match e_android::serve::query_with_retry(
        std::path::Path::new(socket),
        request,
        retries,
        std::time::Duration::from_millis(delay_ms),
    ) {
        Ok(reply) => {
            println!("{reply}");
            if reply.starts_with("{\"error\"") {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(error) => {
            eprintln!("query: {error}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_chaos(args: &[&str]) -> ExitCode {
    let mut config = e_android::soak::SoakConfig::default();
    if let Some(seed) = flag_value(args, "--seed").and_then(|value| value.parse().ok()) {
        config.seed = seed;
    }
    if let Some(size) = flag_value(args, "--fleet-size").and_then(|value| value.parse().ok()) {
        config.fleet_size = size;
    }
    config.quick = has_flag(args, "--quick");

    let report = e_android::soak::run_soak(&config);
    if has_flag(args, "--json") {
        match serde_json::to_string_pretty(&report) {
            Ok(json) => println!("{json}"),
            Err(error) => {
                eprintln!("chaos: failed to serialize report: {error}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        println!(
            "chaos soak: {} scenario runs, {} fleet runs (seed {})",
            report.scenario_runs, report.fleet_runs, config.seed
        );
        println!("faults injected:");
        for (kind, count) in &report.faults_injected {
            let detected = report.faults_detected.get(kind).copied().unwrap_or(0);
            println!("  {kind:<24} {count:>7} injected {detected:>7} detected");
        }
        if report.passed() {
            println!("all invariants held");
        } else {
            println!("{} violation(s):", report.violations.len());
            for violation in &report.violations {
                println!("  {violation}");
            }
        }
    }
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_lint(args: &[&str]) -> ExitCode {
    if has_flag(args, "--rules") {
        println!("{:<26} {:<8} description", "rule", "attack");
        for (rule, description) in Linter::new().rule_listing() {
            let attack = rule
                .paper_attack()
                .map(|n| format!("#{n}"))
                .unwrap_or_else(|| String::from("-"));
            println!("{:<26} {:<8} {}", rule.to_string(), attack, description);
        }
        return ExitCode::SUCCESS;
    }

    let target = match args.first() {
        None | Some(&"demo") => "demo",
        Some(&"corpus") => "corpus",
        Some(&flag) if flag.starts_with("--") => "demo",
        Some(&other) => {
            eprintln!("unknown lint target: {other} (expected demo or corpus)");
            return ExitCode::FAILURE;
        }
    };

    let report = if target == "demo" {
        // The paper's testbed: the six demo apps plus the fungame malware.
        let mut android = AndroidSystem::new();
        e_android::apps::DemoApps::install_all(&mut android);
        e_android::apps::Malware::install(&mut android);
        android.lint()
    } else {
        let seed: u64 = flag_value(args, "--seed")
            .and_then(|value| value.parse().ok())
            .unwrap_or(2_017);
        let size: usize = flag_value(args, "--size")
            .and_then(|value| value.parse().ok())
            .unwrap_or(1_124);
        let config = CorpusConfig {
            size,
            ..CorpusConfig::paper()
        };
        let corpus = generate_corpus(&config, seed);
        Linter::new().lint_manifests(&corpus)
    };

    // Revision-regression mode: diff against a saved schema-v2 JSON
    // report. Introduced findings are regressions and fail the exit code;
    // identical inputs diff clean and exit zero.
    if let Some(path) = flag_value(args, "--baseline") {
        let baseline_text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("cannot read baseline {path}: {err}");
                return ExitCode::FAILURE;
            }
        };
        let baseline = match render::parse_json(&baseline_text) {
            Ok(parsed) => parsed,
            Err(err) => {
                eprintln!("invalid baseline {path}: {err}");
                return ExitCode::FAILURE;
            }
        };
        let diff = BaselineDiff::compare(&baseline, &render::json_report(&report));
        print!("{diff}");
        return if diff.has_regressions() {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    if has_flag(args, "--json") {
        print!("{}", render::to_json(&report));
    } else if target == "demo" {
        print!("{}", render::to_text(&report));
    } else {
        println!(
            "{} diagnostic(s) across {} app(s), total static bound {:.1} kJ/day",
            report.len(),
            report.apps_checked,
            report.total_predicted_joules() / 1_000.0
        );
        for (rule, count) in report.counts_by_rule() {
            println!("  {:<26} {count:>6}", rule.to_string());
        }
    }
    ExitCode::SUCCESS
}

fn cmd_antutu() -> ExitCode {
    for config in ea_bench::OverheadConfig::ALL {
        let score = ea_bench::run_antutu(config, ea_bench::AntutuWorkload::default());
        println!("{:<20} total {:>10.1}", config.label(), score.total);
    }
    ExitCode::SUCCESS
}
