//! # e-android — façade crate
//!
//! Re-exports the whole E-Android reproduction workspace behind one
//! dependency. See the individual crates for details:
//!
//! * [`sim`] — deterministic discrete-event kernel (clock, processes, Binder).
//! * [`power`] — hardware power models and the battery.
//! * [`framework`] — the simulated Android framework (activities, services,
//!   intents, task stacks, wakelocks, settings, window manager).
//! * [`core`] — the paper's contribution: collateral-energy monitoring,
//!   attack lifecycles, energy maps, enhanced accounting, battery interface.
//! * [`apps`] — demo apps, the six malware, and scripted scenarios.
//! * [`corpus`] — the synthetic Google Play corpus and manifest analyzer.
//! * [`telemetry`] — structured tracing, metrics, and trace export.
//! * [`metrics`] — mergeable quantile sketches, windowed metrics, the
//!   per-device flight recorder, and the fleet health observatory.
//! * [`lint`] — static collateral-energy analyzer (rules `EA0001`–`EA0009`).
//! * [`fleet`] — sharded parallel fleet simulator with population-scale
//!   collateral-energy aggregation.
//! * [`chaos`] — deterministic fault injection: seeded fault plans and
//!   per-layer injectors (see DESIGN.md §11).
//! * [`soak`] — the chaos soak harness run by `eandroid chaos`.
//! * [`serve`] — streaming fleet ingest service: sharded SPSC lanes,
//!   online windowed aggregation, Unix-socket snapshot queries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod soak;

pub use ea_apps as apps;
pub use ea_chaos as chaos;
pub use ea_core as core;
pub use ea_corpus as corpus;
pub use ea_fleet as fleet;
pub use ea_framework as framework;
pub use ea_lint as lint;
pub use ea_metrics as metrics;
pub use ea_power as power;
pub use ea_serve as serve;
pub use ea_sim as sim;
pub use ea_telemetry as telemetry;
