//! The chaos soak harness: every scenario and a fleet, under escalating
//! fault rates, with the degraded-mode invariants checked after each run.
//!
//! The harness asserts five properties (see DESIGN.md §11):
//!
//! 1. **No panic escapes** — whatever the injectors do, a scenario run
//!    either completes or (for fleet devices) becomes a supervised,
//!    recorded failure. The profiling pipeline itself never unwinds.
//! 2. **Conservation** — energy attributed after sanitization never
//!    exceeds the true energy drawn from the battery.
//! 3. **Determinism** — the dense and reference accounting backends stay
//!    byte-identical under identical fault plans, and a zero-rate plan is
//!    byte-identical to no plan at all.
//! 4. **Verdict stability** — sub-threshold measurement noise (counter
//!    glitches only) never changes which attacks the monitor detects.
//! 5. **Replay fidelity** — every abandoned device's recorded failure
//!    reproduces exactly when replayed from the report's embedded
//!    config (the `eandroid replay` contract, DESIGN.md §16).

use std::collections::BTreeMap;
use std::panic::{self, AssertUnwindSafe};

use ea_apps::Scenario;
use ea_chaos::FaultPlan;
use ea_core::{labels_from, BatteryView, Confidence, Profiler, ScreenPolicy};
use ea_fleet::{run_fleet, FleetConfig};
use serde::Serialize;

/// What the soak run exercises.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Root seed: every fault plan derives from it.
    pub seed: u64,
    /// Devices in the fleet leg.
    pub fleet_size: usize,
    /// Quick mode: one moderate rate instead of the full escalation
    /// ladder (the CI smoke setting).
    pub quick: bool,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            seed: 2_026,
            fleet_size: 64,
            quick: false,
        }
    }
}

/// The soak outcome: run counts, fault totals, and every violated
/// invariant (empty means the soak passed).
#[derive(Debug, Clone, Default, Serialize)]
pub struct SoakReport {
    /// Scenario executions performed (all variants counted).
    pub scenario_runs: usize,
    /// Fleet executions performed.
    pub fleet_runs: usize,
    /// Faults injected across every run, by taxonomy label.
    pub faults_injected: BTreeMap<String, u64>,
    /// Faults detected/compensated across every run, by taxonomy label.
    pub faults_detected: BTreeMap<String, u64>,
    /// Invariant violations; the soak passes iff this is empty.
    pub violations: Vec<String>,
}

impl SoakReport {
    /// Whether every invariant held.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    fn absorb(&mut self, log: &ea_chaos::FaultLog) {
        for (kind, count) in &log.injected {
            *self.faults_injected.entry(kind.clone()).or_default() += count;
        }
        for (kind, count) in &log.detected {
            *self.faults_detected.entry(kind.clone()).or_default() += count;
        }
    }
}

/// The per-kind attack verdict of one run: how many periods of each
/// attack kind the collateral monitor recorded.
fn verdict(profiler: &Profiler) -> BTreeMap<String, usize> {
    let mut periods = BTreeMap::new();
    if let Some(monitor) = profiler.monitor() {
        for record in monitor.attack_history() {
            *periods
                .entry(record.info.kind.label().to_string())
                .or_default() += 1;
        }
    }
    periods
}

/// The deterministic byte-level summary of one run: the serialized
/// battery view plus the exact drained and ledger-total joules.
fn run_digest(run: &ea_apps::RunOutput) -> String {
    let labels = labels_from(&run.android);
    let view = match run.profiler.collateral() {
        Some(graph) => BatteryView::eandroid(run.profiler.ledger(), graph, &labels),
        None => BatteryView::android(run.profiler.ledger(), &labels),
    };
    let view_json = serde_json::to_string(&view).unwrap_or_default();
    format!(
        "{view_json}|drained={:?}|percent={:?}",
        run.profiler.battery().drained().as_joules(),
        run.profiler.battery().percent()
    )
}

fn profiler() -> Profiler {
    Profiler::eandroid(ScreenPolicy::SeparateEntity)
}

/// Runs the full soak and reports every violated invariant.
pub fn run_soak(config: &SoakConfig) -> SoakReport {
    let mut report = SoakReport::default();
    let escalation: &[f64] = if config.quick {
        &[0.25]
    } else {
        &[0.05, 0.25, 0.5]
    };

    for (ordinal, scenario) in Scenario::ALL.into_iter().enumerate() {
        let lane = ordinal as u64;
        let name = scenario.name();

        // Baseline: no chaos attached at all.
        let baseline = scenario.run(profiler());
        let baseline_digest = run_digest(&baseline);
        let baseline_verdict = verdict(&baseline.profiler);
        report.scenario_runs += 1;

        // Invariant 3a: a zero-rate plan is a byte-identical no-op.
        let zero = scenario.run_chaos(profiler(), &FaultPlan::zero(config.seed), lane);
        report.scenario_runs += 1;
        if run_digest(&zero) != baseline_digest {
            report.violations.push(format!(
                "{name}: zero-rate plan diverged from the no-chaos run"
            ));
        }

        // Invariant 4: sub-threshold counter noise never changes verdicts.
        let noisy = scenario.run_chaos(
            profiler(),
            &FaultPlan::counters_only(config.seed, 0.02),
            lane,
        );
        report.scenario_runs += 1;
        if let Some(chaos) = noisy.profiler.chaos() {
            report.absorb(chaos.log());
        }
        if verdict(&noisy.profiler) != baseline_verdict {
            report.violations.push(format!(
                "{name}: sub-threshold counter noise changed the attack verdict"
            ));
        }

        // Escalation ladder: full fault mix, conservation and backend
        // identity checked at every rate.
        for &rate in escalation {
            let plan = FaultPlan::uniform(config.seed, rate);
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                scenario.run_chaos(profiler(), &plan, lane)
            }));
            report.scenario_runs += 1;
            let run = match outcome {
                Ok(run) => run,
                Err(_) => {
                    report
                        .violations
                        .push(format!("{name}: panic escaped at rate {rate}"));
                    continue;
                }
            };
            if let Some(log) = run.android.fault_log() {
                report.absorb(log);
            }
            if let Some(chaos) = run.profiler.chaos() {
                report.absorb(chaos.log());
                // Invariant 2: conservation.
                if chaos.attributed_joules() > chaos.drawn_joules() + 1e-6 {
                    report.violations.push(format!(
                        "{name}: attributed {:.6} J exceeds drawn {:.6} J at rate {rate}",
                        chaos.attributed_joules(),
                        chaos.drawn_joules()
                    ));
                }
                // Degraded runs must say so on the battery interface.
                if chaos.anomalies() > 0 {
                    let labels = labels_from(&run.android);
                    let view = match run.profiler.collateral() {
                        Some(graph) => BatteryView::eandroid(run.profiler.ledger(), graph, &labels),
                        None => BatteryView::android(run.profiler.ledger(), &labels),
                    }
                    .with_degraded(&chaos.degraded_by_entity())
                    .with_confidence(chaos.confidence());
                    if view.confidence != Confidence::Degraded {
                        report.violations.push(format!(
                            "{name}: anomalies detected but the battery view stayed Exact"
                        ));
                    }
                }
            }

            // Invariant 3b: dense and reference accounting agree byte-
            // for-byte under the identical plan.
            let reference = panic::catch_unwind(AssertUnwindSafe(|| {
                scenario.run_chaos(profiler().with_reference_accounting(), &plan, lane)
            }));
            report.scenario_runs += 1;
            match reference {
                Ok(reference) => {
                    if run_digest(&reference) != run_digest(&run) {
                        report.violations.push(format!(
                            "{name}: dense and reference accounting diverged at rate {rate}"
                        ));
                    }
                }
                Err(_) => report
                    .violations
                    .push(format!("{name}: reference path panicked at rate {rate}")),
            }
        }
    }

    soak_fleet(config, &mut report, escalation);
    report
}

/// The fleet leg: supervision, health accounting, and `--jobs`
/// independence under faults.
fn soak_fleet(config: &SoakConfig, report: &mut SoakReport, escalation: &[f64]) {
    let base = FleetConfig {
        jobs: 2,
        ..FleetConfig::smoke(config.fleet_size, config.seed)
    };

    // Invariant 3a at fleet scale: zero-rate plan == no plan, byte for byte.
    let (bare, _) = run_fleet(&base);
    let (zeroed, _) = run_fleet(&FleetConfig {
        faults: Some(FaultPlan::zero(config.seed)),
        ..base.clone()
    });
    report.fleet_runs += 2;
    if ea_fleet::render::to_json(&bare) != ea_fleet::render::to_json(&zeroed) {
        report
            .violations
            .push(String::from("fleet: zero-rate plan diverged from no plan"));
    }

    for &rate in escalation {
        let faulted = FleetConfig {
            faults: Some(FaultPlan::uniform(config.seed ^ 0xC4A0_5EED, rate)),
            jobs: 1,
            ..base.clone()
        };
        let (sequential, _) = run_fleet(&faulted);
        let (parallel, _) = run_fleet(&FleetConfig {
            jobs: 4,
            ..faulted.clone()
        });
        report.fleet_runs += 2;

        // Determinism: the faulted report is --jobs independent.
        if ea_fleet::render::to_json(&sequential) != ea_fleet::render::to_json(&parallel) {
            report.violations.push(format!(
                "fleet: faulted report differs between --jobs 1 and 4 at rate {rate}"
            ));
        }
        // Supervision: every device is accounted for.
        if sequential.devices_completed + sequential.health.devices_abandoned != faulted.size {
            report.violations.push(format!(
                "fleet: {} completed + {} abandoned != {} devices at rate {rate}",
                sequential.devices_completed, sequential.health.devices_abandoned, faulted.size
            ));
        }
        for (kind, count) in &sequential.health.faults_injected {
            *report.faults_injected.entry(kind.clone()).or_default() += count;
        }
        for (kind, count) in &sequential.health.faults_detected {
            *report.faults_detected.entry(kind.clone()).or_default() += count;
        }
        // Health: at a meaningful rate the section must be populated.
        if rate >= 0.2 && sequential.health.faults_injected.is_empty() {
            report.violations.push(format!(
                "fleet: no faults recorded in the health section at rate {rate}"
            ));
        }
        // Every injected device panic must show up in the supervisor's
        // retry accounting (retried, then recovered or abandoned).
        let panics = sequential
            .health
            .faults_injected
            .get("device_panic")
            .copied()
            .unwrap_or(0);
        if panics > 0 && sequential.health.devices_retried == 0 {
            report.violations.push(format!(
                "fleet: {panics} device panic(s) injected but no device was retried at rate {rate}"
            ));
        }
        if sequential.health.devices_retried
            != sequential.health.devices_recovered + sequential.health.devices_abandoned
        {
            report.violations.push(format!(
                "fleet: retried {} != recovered {} + abandoned {} at rate {rate}",
                sequential.health.devices_retried,
                sequential.health.devices_recovered,
                sequential.health.devices_abandoned
            ));
        }
        // Invariant 5: replay fidelity. Every abandoned device's
        // forensics bundle must reproduce the recorded outcome when
        // re-supervised from the report's embedded replay config.
        if !sequential.failures.is_empty() {
            let replayed = ea_fleet::replay_report(&sequential, 0);
            report.fleet_runs += 1;
            for failure in replayed.failures.iter().filter(|f| !f.matched) {
                report.violations.push(format!(
                    "fleet: device {} replay diverged at rate {rate}: {}",
                    failure.index,
                    failure.mismatches.join("; ")
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_soak_passes() {
        let report = run_soak(&SoakConfig {
            seed: 11,
            fleet_size: 8,
            quick: true,
        });
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(report.scenario_runs > Scenario::ALL.len() * 4);
        assert!(
            report.faults_injected.values().sum::<u64>() > 0,
            "soak actually injected faults"
        );
    }
}
