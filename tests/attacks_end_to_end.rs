//! End-to-end attack detection: every §VI attack must evade the stock
//! battery interface and be exposed by E-Android, with identical battery
//! drain in both modes (the §VI-B energy-efficiency result).

use e_android::apps::Scenario;
use e_android::core::{labels_from, BatteryView, Entity, Profiler, ScreenPolicy};

fn run_both(scenario: Scenario) -> (e_android::apps::RunOutput, e_android::apps::RunOutput) {
    let baseline = scenario.run(Profiler::android(ScreenPolicy::SeparateEntity));
    let enhanced = scenario.run(Profiler::eandroid(ScreenPolicy::SeparateEntity));
    (baseline, enhanced)
}

#[test]
fn every_attack_shifts_blame_to_the_malware() {
    for scenario in Scenario::ALL.into_iter().filter(|s| s.is_attack()) {
        let (baseline, enhanced) = run_both(scenario);
        let malware = enhanced.malware.expect("attacks install malware");
        let labels = labels_from(&enhanced.android);

        let stock = BatteryView::android(baseline.profiler.ledger(), &labels);
        let revised = BatteryView::eandroid(
            enhanced.profiler.ledger(),
            enhanced.profiler.collateral().unwrap(),
            &labels,
        );

        let before = stock.percent_of(Entity::App(malware));
        let after = revised.percent_of(Entity::App(malware));
        assert!(
            before < 5.0,
            "{}: stock accounting must miss the malware, saw {before:.1}%",
            scenario.name()
        );
        assert!(
            after > before + 2.0,
            "{}: E-Android must expose the malware ({before:.1}% -> {after:.1}%)",
            scenario.name()
        );
    }
}

#[test]
fn energy_efficiency_battery_drop_is_identical() {
    // §VI-B: "In all above experiments, the decreased energy level is the
    // same between Android and E-Android."
    for scenario in Scenario::ALL {
        let (baseline, enhanced) = run_both(scenario);
        let a = baseline.profiler.battery().drained().as_joules();
        let e = enhanced.profiler.battery().drained().as_joules();
        assert!(
            (a - e).abs() < 1e-6,
            "{}: battery drop must match ({a} vs {e})",
            scenario.name()
        );
    }
}

#[test]
fn attack3_energy_outside_the_period_is_not_charged() {
    // "Only the energy consumed during the period of a collateral attack is
    // attributed to malware" — run attack 3, then let the victim run its
    // service legitimately afterwards; the malware's tally must not grow.
    let run = Scenario::Attack3BindService.run(Profiler::eandroid(ScreenPolicy::SeparateEntity));
    let malware = run.malware.unwrap();
    let charged_during = run.profiler.collateral().unwrap().collateral_total(malware);

    let mut android = run.android;
    let mut profiler = run.profiler;
    // The malware unbinds: the attack period ends.
    let connections: Vec<_> = android
        .running_services_of(run.apps.victim)
        .iter()
        .flat_map(|(_, record)| record.bindings.keys().copied().collect::<Vec<_>>())
        .collect();
    for connection in connections {
        android.unbind_service(malware, connection).unwrap();
    }
    // The victim restarts its own service and works for a minute.
    android
        .start_service(
            run.apps.victim,
            e_android::framework::Intent::explicit("com.example.victim", "Worker"),
        )
        .unwrap();
    profiler.run(&mut android, e_android::sim::SimDuration::from_secs(60));

    let charged_after = profiler.collateral().unwrap().collateral_total(malware);
    assert!(
        (charged_after.as_joules() - charged_during.as_joules()).abs() < 1e-9,
        "no energy beyond the attack period may be charged"
    );
}

#[test]
fn attack4_chains_screen_energy_to_the_malware() {
    // The victim's leaked wakelock holds the screen; Algorithm 1's parent
    // propagation routes the screen energy through the victim to the
    // interrupting malware.
    let run = Scenario::Attack4Interrupt.run(Profiler::eandroid(ScreenPolicy::SeparateEntity));
    let malware = run.malware.unwrap();
    let graph = run.profiler.collateral().unwrap();

    let rows = graph.collateral_of(malware);
    let has_victim = rows.iter().any(|(entity, energy)| {
        *entity == Entity::App(run.apps.victim) && energy.as_joules() > 0.0
    });
    let has_screen = rows
        .iter()
        .any(|(entity, energy)| *entity == Entity::Screen && energy.as_joules() > 0.0);
    assert!(has_victim, "malware charged for the interrupted victim");
    assert!(
        has_screen,
        "malware charged for the screen the leak held on"
    );
}

#[test]
fn attack6_screen_energy_lands_on_malware_not_foreground() {
    let run = Scenario::Attack6Wakelock.run(Profiler::eandroid(ScreenPolicy::SeparateEntity));
    let malware = run.malware.unwrap();
    let graph = run.profiler.collateral().unwrap();
    let rows = graph.collateral_of(malware);
    let screen_energy: f64 = rows
        .iter()
        .filter(|(entity, _)| *entity == Entity::Screen)
        .map(|(_, energy)| energy.as_joules())
        .sum();
    assert!(
        screen_energy > 10.0,
        "a minute of forced screen must show up, got {screen_energy:.1} J"
    );
    // The victim app is innocent here: it never appears in the malware's
    // map for this attack.
    assert!(graph.collateral_total(run.apps.victim).is_zero());
}

#[test]
fn normal_scenes_also_profile_collateral() {
    // E-Android is not only an attack detector: normal IPC (Figure 9a/9b)
    // produces collateral rows too.
    let run = Scenario::Scene1MessageVideo.run(Profiler::eandroid(ScreenPolicy::SeparateEntity));
    let graph = run.profiler.collateral().unwrap();
    assert!(graph.collateral_total(run.apps.message).as_joules() > 0.0);

    // And the malware-free scenes install no malware.
    assert!(run.malware.is_none());
}
