//! End-to-end calibration: recover a usable linear power model (§II's
//! PowerTutor methodology) from states driven through the real framework,
//! then check it predicts unseen states.

use e_android::framework::{AndroidSystem, AppManifest, ChangeSource, Permission};
use e_android::power::{fit_power_model, DevicePowerModel, PowerSample};
use e_android::sim::SimDuration;

fn training_handset() -> (AndroidSystem, e_android::sim::Uid) {
    let mut android = AndroidSystem::new();
    let app = android.install(
        AppManifest::builder("com.cal.app")
            .activity("Main", true)
            .permission(Permission::Camera)
            .permission(Permission::WakeLock)
            .build(),
    );
    android.user_launch("com.cal.app").unwrap();
    (android, app)
}

#[test]
fn framework_driven_calibration_recovers_a_predictive_model() {
    let (mut android, app) = training_handset();
    let mut handset = DevicePowerModel::nexus4();

    // Drive the handset through a training schedule: brightness sweep ×
    // CPU load × camera × audio, sampling the "power meter" (the ground
    // truth model) at each state.
    let mut samples = Vec::new();
    for &brightness in &[1u8, 32, 96, 160, 255] {
        android
            .set_brightness(ChangeSource::User, brightness)
            .unwrap();
        for &load in &[0.0, 0.25, 0.5, 1.0] {
            android.set_extra_demand(app, load);
            for &camera in &[false, true] {
                if camera {
                    android.camera_start(app, true).unwrap();
                } else {
                    android.camera_stop(app);
                }
                for &audio in &[false, true] {
                    android.set_audio(app, audio);
                    android.note_user_activity();
                    android.advance(SimDuration::from_secs(5));
                    let usage = android.usage_snapshot();
                    let measured_mw = handset.total_mw(android.now(), &usage);
                    samples.push(PowerSample { usage, measured_mw });
                }
            }
        }
    }

    let model = fit_power_model(&samples).expect("training schedule is well-conditioned");

    // §II: linear fits of real (non-linear) hardware carry error, but stay
    // usable — the paper quotes error rates up to ~20 %.
    assert!(model.mape < 0.25, "mape {:.3} too high", model.mape);
    assert!(model.cpu_mw_per_core > 50.0);
    assert!(model.screen_mw_per_level > 100.0);
    assert!(model.camera_mw > 500.0);
    assert!(model.audio_mw > 50.0);

    // Held-out state: a configuration never seen during training.
    android.set_brightness(ChangeSource::User, 200).unwrap();
    android.set_extra_demand(app, 0.7);
    android.camera_stop(app);
    android.set_audio(app, true);
    android.note_user_activity();
    android.advance(SimDuration::from_secs(5));
    let usage = android.usage_snapshot();
    let truth = handset.total_mw(android.now(), &usage);
    let predicted = model.predict_mw(&usage);
    let relative_error = ((predicted - truth) / truth).abs();
    assert!(
        relative_error < 0.25,
        "held-out prediction off by {:.1}% ({predicted:.0} vs {truth:.0} mW)",
        relative_error * 100.0
    );
}
