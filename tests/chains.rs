//! Chain and multi-attack integration tests against the *real* framework —
//! the Figure 6/7 timelines executed through `AndroidSystem` events rather
//! than the graph API directly.

use e_android::core::{Entity, Profiler, ScreenPolicy};
use e_android::framework::{AndroidSystem, AppManifest, ChangeSource, Intent, Permission};
use e_android::sim::SimDuration;

fn app(package: &str) -> AppManifest {
    AppManifest::builder(package)
        .activity("Main", true)
        .service("Worker", true)
        .permission(Permission::WakeLock)
        .permission(Permission::WriteSettings)
        .build()
}

#[test]
fn figure7_hybrid_chain_through_the_framework() {
    let mut android = AndroidSystem::new();
    let a = android.install(app("com.a"));
    let b = android.install(app("com.b"));
    let c = android.install(app("com.c"));
    android.user_launch("com.a").unwrap();

    let mut profiler = Profiler::eandroid(ScreenPolicy::SeparateEntity);
    profiler.run(&mut android, SimDuration::from_secs(2));

    // A binds B's service.
    android
        .bind_service(a, Intent::explicit("com.b", "Worker"))
        .unwrap();
    profiler.run(&mut android, SimDuration::from_secs(2));

    // B starts C's activity.
    android
        .start_activity(b, Intent::explicit("com.c", "Main"))
        .unwrap();
    profiler.run(&mut android, SimDuration::from_secs(2));

    // C stealthily raises the brightness.
    android.set_brightness(ChangeSource::App(c), 250).unwrap();
    profiler.run(&mut android, SimDuration::from_secs(10));

    let graph = profiler.collateral().unwrap();
    // A's map contains B (bind), C (chain), and the screen (chain).
    assert!(graph.links(a, Entity::App(b)) > 0, "A→B live");
    assert!(graph.links(a, Entity::App(c)) > 0, "A→C via chain");
    assert!(graph.links(a, Entity::Screen) > 0, "A→screen via chain");
    assert!(graph.collateral_total(a) > graph.collateral_total(b));
    assert!(graph.collateral_total(b).as_joules() > 0.0);

    // The user resets brightness: the screen attack ends everywhere.
    android.set_brightness(ChangeSource::User, 96).unwrap();
    profiler.run(&mut android, SimDuration::from_secs(1));
    let graph = profiler.collateral().unwrap();
    assert_eq!(graph.links(a, Entity::Screen), 0);
    assert_eq!(graph.links(c, Entity::Screen), 0);
    // But the app-level chain is still alive.
    assert!(graph.links(a, Entity::App(b)) > 0);
}

#[test]
fn figure6_multi_attack_single_charging() {
    let mut android = AndroidSystem::new();
    let a = android.install(app("com.a"));
    let b = android.install(app("com.b"));
    android.user_launch("com.a").unwrap();

    let mut profiler = Profiler::eandroid(ScreenPolicy::SeparateEntity);

    // A binds B and also starts B's activity: two live links, one tally.
    let connection = android
        .bind_service(a, Intent::explicit("com.b", "Worker"))
        .unwrap();
    android
        .start_activity(a, Intent::explicit("com.b", "Main"))
        .unwrap();
    profiler.run(&mut android, SimDuration::from_secs(10));

    let graph = profiler.collateral().unwrap();
    assert_eq!(graph.links(a, Entity::App(b)), 2);
    let single_tally = graph.collateral_total(a);
    // B's own ledger energy must not be double-charged to A.
    let b_consumed = profiler.ledger().total_of(Entity::App(b));
    assert!(
        single_tally.as_joules() <= b_consumed.as_joules() + 1e-9,
        "collateral ({single_tally}) cannot exceed what B consumed ({b_consumed})"
    );

    // The user starts B directly: the activity link ends, the bind link
    // persists; charging continues exactly once.
    android.user_launch("com.b").unwrap();
    profiler.run(&mut android, SimDuration::from_secs(1));
    let graph = profiler.collateral().unwrap();
    assert_eq!(graph.links(a, Entity::App(b)), 1);

    // After the unbind, the relation is fully revoked.
    android.unbind_service(a, connection).unwrap();
    profiler.run(&mut android, SimDuration::from_secs(1));
    let before = profiler.collateral().unwrap().collateral_total(a);
    profiler.run(&mut android, SimDuration::from_secs(30));
    let after = profiler.collateral().unwrap().collateral_total(a);
    assert!((after.as_joules() - before.as_joules()).abs() < 1e-9);
}

#[test]
fn chain_survives_middleman_backgrounding() {
    // A starts B; B starts C; B goes to background. C's energy still flows
    // to A and B until C is re-started by the user.
    let mut android = AndroidSystem::new();
    let a = android.install(app("com.a"));
    let b = android.install(app("com.b"));
    let c = android.install(app("com.c"));
    android.user_launch("com.a").unwrap();
    let mut profiler = Profiler::eandroid(ScreenPolicy::SeparateEntity);

    android
        .start_activity(a, Intent::explicit("com.b", "Main"))
        .unwrap();
    android
        .start_activity(b, Intent::explicit("com.c", "Main"))
        .unwrap();
    profiler.run(&mut android, SimDuration::from_secs(5));

    let graph = profiler.collateral().unwrap();
    let a_before = graph.collateral_total(a);
    assert!(a_before.as_joules() > 0.0);
    assert!(graph.links(a, Entity::App(c)) > 0);

    // The user starts C directly: every activity link onto C ends.
    android.user_launch("com.c").unwrap();
    profiler.run(&mut android, SimDuration::from_secs(1));
    let graph = profiler.collateral().unwrap();
    assert_eq!(graph.links(a, Entity::App(c)), 0);
    assert_eq!(graph.links(b, Entity::App(c)), 0);
}

#[test]
fn cycles_do_not_double_charge_or_panic() {
    let mut android = AndroidSystem::new();
    let a = android.install(app("com.a"));
    let b = android.install(app("com.b"));
    android.user_launch("com.a").unwrap();
    let mut profiler = Profiler::eandroid(ScreenPolicy::SeparateEntity);

    // A ↔ B bind each other.
    android
        .bind_service(a, Intent::explicit("com.b", "Worker"))
        .unwrap();
    android
        .bind_service(b, Intent::explicit("com.a", "Worker"))
        .unwrap();
    profiler.run(&mut android, SimDuration::from_secs(10));

    let graph = profiler.collateral().unwrap();
    assert_eq!(graph.links(a, Entity::App(a)), 0, "no self links");
    assert_eq!(graph.links(b, Entity::App(b)), 0, "no self links");
    assert!(graph.collateral_total(a).as_joules() > 0.0);
    assert!(graph.collateral_total(b).as_joules() > 0.0);
}
