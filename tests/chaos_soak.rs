//! The chaos soak as a tier-2 integration test: every scenario plus a
//! small fleet under the quick escalation ladder, asserting the four
//! degraded-mode invariants (DESIGN.md §11).

use e_android::soak::{run_soak, SoakConfig};

#[test]
fn quick_soak_holds_every_invariant() {
    let report = run_soak(&SoakConfig {
        seed: 2_026,
        fleet_size: 16,
        quick: true,
    });
    assert!(report.passed(), "violations: {:#?}", report.violations);
    assert!(report.scenario_runs >= 70, "all scenarios swept");
    assert!(report.fleet_runs >= 4, "fleet leg ran");
    assert!(
        report.faults_injected.values().sum::<u64>() > 100,
        "the soak injected a meaningful fault load: {:?}",
        report.faults_injected
    );
}

#[test]
fn soak_report_is_seed_deterministic() {
    let config = SoakConfig {
        seed: 5,
        fleet_size: 6,
        quick: true,
    };
    let first = run_soak(&config);
    let second = run_soak(&config);
    assert_eq!(first.faults_injected, second.faults_injected);
    assert_eq!(first.faults_detected, second.faults_detected);
    assert_eq!(first.violations, second.violations);
}
