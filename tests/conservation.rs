//! Energy-conservation and determinism invariants across the whole stack.

use e_android::apps::Scenario;
use e_android::core::{Entity, Profiler, ScreenPolicy};

#[test]
fn ledger_conserves_integrated_energy_in_every_scenario() {
    for scenario in Scenario::ALL {
        for policy in [ScreenPolicy::SeparateEntity, ScreenPolicy::ForegroundApp] {
            let run = scenario.run(Profiler::eandroid(policy));
            let ledger = run.profiler.ledger().grand_total().as_joules();
            let integrated = run.profiler.integrated_energy().as_joules();
            assert!(
                (ledger - integrated).abs() < 1e-6,
                "{} under {:?}: ledger {ledger} != integrated {integrated}",
                scenario.name(),
                policy
            );
        }
    }
}

#[test]
fn collateral_never_exceeds_what_the_driven_entities_consumed() {
    for scenario in Scenario::ALL {
        let run = scenario.run(Profiler::eandroid(ScreenPolicy::SeparateEntity));
        let graph = run.profiler.collateral().unwrap();
        let ledger = run.profiler.ledger();
        for host in graph.hosts() {
            for (entity, energy) in graph.collateral_of(host) {
                // Under the SeparateEntity policy the ledger tracks each
                // entity's own consumption, which bounds its collateral
                // contribution to any single host.
                let consumed = ledger.total_of(entity).as_joules();
                assert!(
                    energy.as_joules() <= consumed + 1e-6,
                    "{}: host {host} charged {energy} for {entity}, which only consumed {consumed}",
                    scenario.name()
                );
            }
        }
    }
}

#[test]
fn scenarios_are_bit_for_bit_deterministic() {
    for scenario in [
        Scenario::Scene2HybridChain,
        Scenario::Attack4Interrupt,
        Scenario::Attack5Brightness,
    ] {
        let a = scenario.run(Profiler::eandroid(ScreenPolicy::SeparateEntity));
        let b = scenario.run(Profiler::eandroid(ScreenPolicy::SeparateEntity));
        assert_eq!(
            a.profiler.battery().drained(),
            b.profiler.battery().drained()
        );
        assert_eq!(a.profiler.ledger(), b.profiler.ledger());
        assert_eq!(
            a.profiler.collateral().unwrap(),
            b.profiler.collateral().unwrap()
        );
    }
}

#[test]
fn screen_policy_moves_screen_energy_without_changing_totals() {
    let separate =
        Scenario::Scene1MessageVideo.run(Profiler::android(ScreenPolicy::SeparateEntity));
    let foreground =
        Scenario::Scene1MessageVideo.run(Profiler::android(ScreenPolicy::ForegroundApp));

    let total_a = separate.profiler.ledger().grand_total().as_joules();
    let total_b = foreground.profiler.ledger().grand_total().as_joules();
    assert!(
        (total_a - total_b).abs() < 1e-6,
        "policy is attribution only"
    );

    // BatteryStats shows a Screen row; PowerTutor folds it into apps.
    assert!(
        separate
            .profiler
            .ledger()
            .total_of(Entity::Screen)
            .as_joules()
            > 0.0
    );
    assert!(foreground
        .profiler
        .ledger()
        .total_of(Entity::Screen)
        .is_zero());
}

#[test]
fn no_entity_is_ever_charged_negative_energy() {
    for scenario in Scenario::ALL {
        let run = scenario.run(Profiler::eandroid(ScreenPolicy::ForegroundApp));
        for entity in run.profiler.ledger().entities() {
            assert!(run.profiler.ledger().total_of(entity).as_joules() >= 0.0);
        }
        let graph = run.profiler.collateral().unwrap();
        for host in graph.hosts() {
            assert!(graph.collateral_total(host).as_joules() >= 0.0);
        }
    }
}
