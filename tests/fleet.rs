//! End-to-end fleet contract tests: byte-identical reports across worker
//! counts, and fault injection that degrades to a `DeviceFailure` entry
//! instead of aborting the run.

use e_android::fleet::{render, run_fleet, FleetConfig};

/// The headline determinism guarantee: for a fixed `(seed, size)` the
/// serialized report is the same bytes at `--jobs 1`, `4`, and `8`.
#[test]
fn report_bytes_are_identical_across_job_counts() {
    let mut config = FleetConfig::smoke(12, 424_242);
    config.jobs = 1;
    let (sequential, _) = run_fleet(&config);
    let baseline = render::to_json(&sequential);

    for jobs in [4, 8] {
        config.jobs = jobs;
        let (parallel, _) = run_fleet(&config);
        assert_eq!(
            baseline,
            render::to_json(&parallel),
            "jobs={jobs} changed the report bytes"
        );
    }
}

/// A deliberately panicking device workload becomes a failure entry; every
/// other device is still simulated and aggregated.
#[test]
fn injected_fault_is_contained_and_reported() {
    let config = FleetConfig {
        jobs: 4,
        panic_devices: vec![3],
        ..FleetConfig::smoke(8, 99)
    };
    let (report, _) = run_fleet(&config);

    assert_eq!(report.failures.len(), 1, "exactly the injected fault");
    assert_eq!(report.failures[0].index, 3);
    assert!(report.failures[0].message.contains("injected fault"));
    assert_eq!(report.devices_completed, 7);
    assert_eq!(report.devices.len(), 7, "survivors fully aggregated");
    assert!(report.devices.iter().all(|row| row.index != 3));
    assert!(report.drain_joules.max > 0.0);
    assert!(!report.prevalence.is_empty() || report.infected_devices == 0);
}

/// The failure path is itself deterministic: the same injected fault
/// yields the same report regardless of worker count.
#[test]
fn fault_injection_does_not_break_determinism() {
    let mut config = FleetConfig {
        panic_devices: vec![1, 5],
        ..FleetConfig::smoke(6, 7)
    };
    config.jobs = 1;
    let (sequential, _) = run_fleet(&config);
    config.jobs = 4;
    let (parallel, _) = run_fleet(&config);
    assert_eq!(render::to_json(&sequential), render::to_json(&parallel));
    assert_eq!(sequential.failures.len(), 2);
}

/// The population-scale lint cross-check holds end to end: nothing the
/// dynamic fleet observed escaped the static analyzer.
#[test]
fn fleet_superset_invariant_holds() {
    let config = FleetConfig {
        jobs: 2,
        infection_rate: 1.0,
        ..FleetConfig::smoke(6, 11)
    };
    let (report, _) = run_fleet(&config);
    assert!(report.infected_devices > 0);
    assert_eq!(
        report.lint.superset_violations, 0,
        "static prediction must be a superset of dynamic observation"
    );
}
