//! The soundness harness over the scripted scenario suite: for every
//! scenario in `crates/apps`, the static lint report must be a superset
//! of what the dynamic `CollateralMonitor` observed — every recorded
//! `(driving uid, AttackKind)` pair needs a matching diagnostic, and
//! (the quantitative half) each driver's static energy envelope — its
//! best priced `predicted_joules` bound — must dominate the collateral
//! energy the monitor attributed to it per victim. This is the
//! acceptance contract of the static
//! analyzer: it may over-warn, it must never miss — in kind or in joules.

use e_android::apps::Scenario;
use e_android::core::{AttackKind, CollateralMonitor, Profiler, ScreenPolicy};
use e_android::lint::soundness::{check_quantitative, check_superset, observed_attacks};
use e_android::lint::{LintSystem, RuleId, Severity};

/// Per-victim `(driving uid, joules)` rows from a run's collateral graph:
/// the strongest measurement the quantitative bound must dominate.
fn measured_collateral(monitor: &CollateralMonitor) -> Vec<(u32, f64)> {
    let graph = monitor.graph();
    let mut rows = Vec::new();
    for host in graph.hosts().collect::<Vec<_>>() {
        for (_victim, energy) in graph.collateral_of(host) {
            rows.push((host.as_raw(), energy.as_joules()));
        }
    }
    rows
}

#[test]
fn static_prediction_covers_every_scenario_dynamically() {
    for scenario in Scenario::ALL {
        let run = scenario.run(Profiler::eandroid(ScreenPolicy::SeparateEntity));
        let history = run
            .profiler
            .monitor()
            .expect("eandroid profiler has a monitor")
            .attack_history();
        let report = run.android.lint();

        let observed = observed_attacks(history);
        let violations = check_superset(&report, &observed);
        assert!(
            violations.is_empty(),
            "{}: static analysis missed dynamic attacks: {}",
            scenario.name(),
            violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ")
        );
    }
}

#[test]
fn static_bound_dominates_measured_collateral_everywhere() {
    // The quantitative half of the contract, across all 14 scenarios:
    // each driver's static energy envelope — the strongest
    // `predicted_joules` bound among its kind-predicting diagnostics —
    // must be at least as large as any collateral energy the dynamic
    // monitor attributed to that driver for any single victim
    // (per-victim rows dominate any per-(victim, kind) split).
    for scenario in Scenario::ALL {
        let run = scenario.run(Profiler::eandroid(ScreenPolicy::SeparateEntity));
        let monitor = run
            .profiler
            .monitor()
            .expect("eandroid profiler has a monitor");
        let report = run.android.lint();

        let measured = measured_collateral(monitor);
        let violations = check_quantitative(&report, &measured);
        assert!(
            violations.is_empty(),
            "{}: static bounds undershot measured collateral: {}",
            scenario.name(),
            violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ")
        );
        // The check must not pass vacuously across the suite: attack
        // scenarios measure real collateral.
        if scenario.is_attack() {
            assert!(
                !measured.is_empty(),
                "{}: attack scenario measured no collateral",
                scenario.name()
            );
        }
    }
}

#[test]
fn all_six_paper_attacks_are_detected_statically() {
    // Across the attack scenarios, the malware must dynamically drive all
    // six attack kinds — and the static pass must predict each of them
    // for the malware's UID before any energy is burned.
    let mut kinds_covered: Vec<AttackKind> = Vec::new();
    for scenario in Scenario::ALL.into_iter().filter(|s| s.is_attack()) {
        let run = scenario.run(Profiler::eandroid(ScreenPolicy::SeparateEntity));
        let malware = run.malware.expect("attack scenarios install malware");
        let report = run.android.lint();
        let predicted = report.predicted_kinds(malware.as_raw());

        for (uid, kind) in observed_attacks(run.profiler.monitor().unwrap().attack_history()) {
            if uid == malware.as_raw() {
                assert!(
                    predicted.contains(&kind),
                    "{}: malware drove {kind} without a static prediction",
                    scenario.name()
                );
                if !kinds_covered.contains(&kind) {
                    kinds_covered.push(kind);
                }
            }
        }
    }
    // One kind per paper attack: #1 ActivityStart, #2/#4 Interruption,
    // #3 ServiceBind, #5 ScreenConfig, #6 WakelockLeak. (ServiceStart is
    // cross-app startService; the scripted malware only ever *binds*
    // foreign services, so it cannot appear dynamically here — EA0003
    // still predicts it statically.)
    for kind in [
        AttackKind::ActivityStart,
        AttackKind::Interruption,
        AttackKind::ServiceBind,
        AttackKind::ScreenConfig,
        AttackKind::WakelockLeak,
    ] {
        assert!(
            kinds_covered.contains(&kind),
            "scenario suite never exercised {kind} for the malware"
        );
    }
}

#[test]
fn malware_is_flagged_critical_with_paper_attack_rules() {
    let run = Scenario::Attack4Interrupt.run(Profiler::eandroid(ScreenPolicy::SeparateEntity));
    let malware = run.malware.unwrap().as_raw();
    let report = run.android.lint();

    let malware_diags: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.uid == Some(malware))
        .collect();
    assert!(
        malware_diags
            .iter()
            .any(|d| d.severity == Severity::Critical),
        "the paper's malware profile must rate CRITICAL"
    );
    // Never-release wakelock policy + overlay page: the two signature
    // rules of the fungame malware.
    for rule in [RuleId::WakelockHold, RuleId::OverlayInterrupt] {
        assert!(
            malware_diags.iter().any(|d| d.rule == rule),
            "malware must trip {rule}"
        );
    }
}

#[test]
fn benign_scenarios_draw_no_critical_findings() {
    for scenario in [Scenario::Normal5Brightness, Scenario::Normal6Wakelock] {
        let run = scenario.run(Profiler::eandroid(ScreenPolicy::SeparateEntity));
        let report = run.android.lint();
        assert!(
            report
                .diagnostics
                .iter()
                .all(|d| d.severity < Severity::Critical),
            "{}: benign demo apps must not rate CRITICAL",
            scenario.name()
        );
    }
}
