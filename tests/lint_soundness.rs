//! The soundness harness over the scripted scenario suite: for every
//! scenario in `crates/apps`, the static lint report must be a superset
//! of what the dynamic `CollateralMonitor` observed — every recorded
//! `(driving uid, AttackKind)` pair needs a matching diagnostic. This is
//! the acceptance contract of the static analyzer: it may over-warn, it
//! must never miss.

use e_android::apps::Scenario;
use e_android::core::{AttackKind, Profiler, ScreenPolicy};
use e_android::lint::soundness::{check_superset, observed_attacks};
use e_android::lint::{LintSystem, RuleId, Severity};

#[test]
fn static_prediction_covers_every_scenario_dynamically() {
    for scenario in Scenario::ALL {
        let run = scenario.run(Profiler::eandroid(ScreenPolicy::SeparateEntity));
        let history = run
            .profiler
            .monitor()
            .expect("eandroid profiler has a monitor")
            .attack_history();
        let report = run.android.lint();

        let observed = observed_attacks(history);
        let violations = check_superset(&report, &observed);
        assert!(
            violations.is_empty(),
            "{}: static analysis missed dynamic attacks: {}",
            scenario.name(),
            violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ")
        );
    }
}

#[test]
fn all_six_paper_attacks_are_detected_statically() {
    // Across the attack scenarios, the malware must dynamically drive all
    // six attack kinds — and the static pass must predict each of them
    // for the malware's UID before any energy is burned.
    let mut kinds_covered: Vec<AttackKind> = Vec::new();
    for scenario in Scenario::ALL.into_iter().filter(|s| s.is_attack()) {
        let run = scenario.run(Profiler::eandroid(ScreenPolicy::SeparateEntity));
        let malware = run.malware.expect("attack scenarios install malware");
        let report = run.android.lint();
        let predicted = report.predicted_kinds(malware.as_raw());

        for (uid, kind) in observed_attacks(run.profiler.monitor().unwrap().attack_history()) {
            if uid == malware.as_raw() {
                assert!(
                    predicted.contains(&kind),
                    "{}: malware drove {kind} without a static prediction",
                    scenario.name()
                );
                if !kinds_covered.contains(&kind) {
                    kinds_covered.push(kind);
                }
            }
        }
    }
    // One kind per paper attack: #1 ActivityStart, #2/#4 Interruption,
    // #3 ServiceBind, #5 ScreenConfig, #6 WakelockLeak. (ServiceStart is
    // cross-app startService; the scripted malware only ever *binds*
    // foreign services, so it cannot appear dynamically here — EA0003
    // still predicts it statically.)
    for kind in [
        AttackKind::ActivityStart,
        AttackKind::Interruption,
        AttackKind::ServiceBind,
        AttackKind::ScreenConfig,
        AttackKind::WakelockLeak,
    ] {
        assert!(
            kinds_covered.contains(&kind),
            "scenario suite never exercised {kind} for the malware"
        );
    }
}

#[test]
fn malware_is_flagged_critical_with_paper_attack_rules() {
    let run = Scenario::Attack4Interrupt.run(Profiler::eandroid(ScreenPolicy::SeparateEntity));
    let malware = run.malware.unwrap().as_raw();
    let report = run.android.lint();

    let malware_diags: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.uid == Some(malware))
        .collect();
    assert!(
        malware_diags
            .iter()
            .any(|d| d.severity == Severity::Critical),
        "the paper's malware profile must rate CRITICAL"
    );
    // Never-release wakelock policy + overlay page: the two signature
    // rules of the fungame malware.
    for rule in [RuleId::WakelockHold, RuleId::OverlayInterrupt] {
        assert!(
            malware_diags.iter().any(|d| d.rule == rule),
            "malware must trip {rule}"
        );
    }
}

#[test]
fn benign_scenarios_draw_no_critical_findings() {
    for scenario in [Scenario::Normal5Brightness, Scenario::Normal6Wakelock] {
        let run = scenario.run(Profiler::eandroid(ScreenPolicy::SeparateEntity));
        let report = run.android.lint();
        assert!(
            report
                .diagnostics
                .iter()
                .all(|d| d.severity < Severity::Critical),
            "{}: benign demo apps must not rate CRITICAL",
            scenario.name()
        );
    }
}
