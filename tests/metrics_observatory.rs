//! End-to-end tests of the ea-metrics observability layer: sketch-backed
//! fleet percentiles, the live observatory, heartbeat/exposition formats,
//! and the per-device flight recorder.

use e_android::fleet::{run_fleet, run_fleet_observed, FleetConfig};
use e_android::metrics::{FleetObservatory, QuantileSketch, SNAPSHOT_SCHEMA};
use e_android::telemetry::SinkHandle;

fn exact_nearest_rank(sorted: &[f64], q: f64) -> f64 {
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The golden accuracy check: the report's sketch-backed percentiles stay
/// within the documented `gamma` relative error of an exact sort of the
/// per-device drains.
#[test]
fn fleet_percentiles_are_within_gamma_of_exact_sort() {
    let config = FleetConfig {
        jobs: 4,
        ..FleetConfig::smoke(24, 4_242)
    };
    let (report, _) = run_fleet(&config);
    let mut drains: Vec<f64> = report.devices.iter().map(|d| d.drained_joules).collect();
    drains.sort_by(|a, b| a.partial_cmp(b).expect("finite drains"));

    let gamma = report.drain_joules.gamma;
    assert_eq!(gamma, QuantileSketch::DEFAULT_GAMMA);
    for (q, estimate) in [
        (0.50, report.drain_joules.p50),
        (0.90, report.drain_joules.p90),
        (0.99, report.drain_joules.p99),
    ] {
        let exact = exact_nearest_rank(&drains, q);
        assert!(
            (estimate - exact).abs() <= gamma * exact,
            "p{:.0}: sketch {estimate} vs exact {exact} (gamma {gamma})",
            q * 100.0
        );
    }
    assert_eq!(
        report.drain_joules.max,
        *drains.last().expect("non-empty fleet"),
        "max stays exact"
    );
}

/// The per-shard sketches must merge to the same bytes at any worker
/// count — including a jobs count that does not divide the fleet.
#[test]
fn sketch_percentiles_are_jobs_independent() {
    let mut config = FleetConfig::smoke(11, 909);
    let mut reports = Vec::new();
    for jobs in [1, 4, 8] {
        config.jobs = jobs;
        let (report, _) = run_fleet(&config);
        reports.push(e_android::fleet::render::to_json(&report));
    }
    assert_eq!(reports[0], reports[1], "jobs 1 vs 4");
    assert_eq!(reports[1], reports[2], "jobs 4 vs 8");
}

/// Attaching an observatory is strictly observational: same bytes out.
#[test]
fn observatory_never_changes_the_report() {
    let config = FleetConfig {
        jobs: 2,
        ..FleetConfig::smoke(6, 33)
    };
    let (plain, _) = run_fleet(&config);
    let observatory = FleetObservatory::new(config.size, 2);
    let (observed, _) = run_fleet_observed(&config, SinkHandle::noop(), Some(&observatory));
    assert_eq!(
        e_android::fleet::render::to_json(&plain),
        e_android::fleet::render::to_json(&observed)
    );

    let snapshot = observatory.snapshot();
    assert_eq!(snapshot.devices_done, plain.devices_completed as u64);
    assert_eq!(snapshot.devices_total, config.size as u64);
    assert!(snapshot.drain_p50_joules > 0.0);
}

/// A chaos-injected device panic must leave a failure entry carrying a
/// non-empty flight-recorder dump (the acceptance criterion of the
/// flight-recorder feature).
#[test]
fn chaos_panic_failures_carry_a_flight_dump() {
    let config = FleetConfig {
        jobs: 2,
        flight_recorder: 64,
        faults: Some(e_android::chaos::FaultPlan {
            seed: 77,
            rates: e_android::chaos::FaultRates {
                device_panic: 0.5,
                ..e_android::chaos::FaultRates::ZERO
            },
        }),
        ..FleetConfig::smoke(8, 31)
    };
    let (report, _) = run_fleet(&config);
    assert!(
        !report.failures.is_empty(),
        "rate 0.5 over 8 devices with a bounded retry budget abandons someone"
    );
    for failure in &report.failures {
        let dump = failure
            .flight_recorder
            .as_ref()
            .expect("flight recorder was on");
        assert_eq!(dump.capacity, 64);
        assert!(
            !dump.is_empty(),
            "device {} died with an empty ring",
            failure.index
        );
    }
    let text = e_android::fleet::render::to_text(&report);
    assert!(text.contains("flight recorder: last"));
}

/// With the recorder off (the default), failures carry no dump and the
/// report is byte-identical to a recorder-on run minus the dump field —
/// i.e. the ring never feeds back into the simulation.
#[test]
fn flight_recorder_is_observational() {
    let base = FleetConfig {
        jobs: 2,
        faults: Some(e_android::chaos::FaultPlan::uniform(9, 0.3)),
        ..FleetConfig::smoke(6, 44)
    };
    let (off, _) = run_fleet(&base);
    let (on, _) = run_fleet(&FleetConfig {
        flight_recorder: 32,
        ..base
    });
    assert_eq!(off.devices_completed, on.devices_completed);
    assert_eq!(off.drain_joules, on.drain_joules);
    assert_eq!(off.prevalence, on.prevalence);
    for (a, b) in off.failures.iter().zip(&on.failures) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.message, b.message);
        assert!(a.flight_recorder.is_none());
        assert!(b.flight_recorder.is_some());
    }
}

/// The heartbeat JSONL line carries the schema tag and the health fields
/// the CI schema validator checks.
#[test]
fn snapshot_jsonl_has_the_documented_schema() {
    let observatory = FleetObservatory::new(4, 2);
    observatory.device_completed(120.0);
    observatory.device_failed();
    let line = observatory.snapshot().to_jsonl();
    let value: serde_json::Value = serde_json::from_str(&line).expect("valid JSON");
    assert_eq!(value["schema"].as_str(), Some(SNAPSHOT_SCHEMA));
    for field in [
        "seq",
        "elapsed_ms",
        "devices_total",
        "devices_done",
        "devices_failed",
        "devices_retried",
        "chaos_panics",
        "devices_per_sec",
        "recent_devices_per_sec",
        "worker_busy",
        "drain_gamma",
        "drain_p50_joules",
        "drain_p90_joules",
        "drain_p99_joules",
    ] {
        assert!(value.get(field).is_some(), "missing field {field}");
    }
}

/// The Prometheus exposition is well-formed: HELP/TYPE pairs precede
/// every family and the summary carries quantile labels.
#[test]
fn prometheus_exposition_is_well_formed() {
    let observatory = FleetObservatory::new(4, 2);
    observatory.device_completed(120.0);
    let text = observatory.snapshot().to_prometheus();
    for family in [
        "eandroid_fleet_devices_done",
        "eandroid_fleet_devices_failed",
        "eandroid_fleet_devices_retried",
        "eandroid_fleet_chaos_panics",
        "eandroid_fleet_devices_total",
        "eandroid_fleet_devices_per_sec",
        "eandroid_fleet_drain_joules",
        "eandroid_fleet_worker_busy_ratio",
    ] {
        assert!(text.contains(&format!("# HELP {family} ")), "{family} HELP");
        assert!(text.contains(&format!("# TYPE {family} ")), "{family} TYPE");
    }
    assert!(text.contains("eandroid_fleet_drain_joules{quantile=\"0.5\"}"));
    assert!(text.contains("eandroid_fleet_drain_joules{quantile=\"0.99\"}"));
    assert!(text.contains("eandroid_fleet_worker_busy_ratio{worker=\"1\"}"));
}
