//! Property-based tests over the whole stack: random (but valid) sequences
//! of framework operations must never panic, and the accounting invariants
//! must hold at every step.

use e_android::core::{Entity, Profiler, ScreenPolicy};
use e_android::framework::{
    AndroidSystem, AppManifest, ChangeSource, Intent, Permission, WakelockKind,
};
use e_android::sim::SimDuration;
use proptest::prelude::*;

/// One random framework operation.
#[derive(Debug, Clone)]
enum Op {
    UserLaunch(usize),
    StartActivity(usize, usize),
    StartService(usize, usize),
    StopService(usize, usize),
    Bind(usize, usize),
    UnbindAll(usize),
    AcquireLock(usize, u8),
    ReleaseAll(usize),
    Brightness(usize, u8),
    UserBrightness(u8),
    Home,
    Back,
    AppHome(usize),
    KillApp(usize),
    Advance(u16),
}

fn op_strategy(apps: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..apps).prop_map(Op::UserLaunch),
        (0..apps, 0..apps).prop_map(|(a, b)| Op::StartActivity(a, b)),
        (0..apps, 0..apps).prop_map(|(a, b)| Op::StartService(a, b)),
        (0..apps, 0..apps).prop_map(|(a, b)| Op::StopService(a, b)),
        (0..apps, 0..apps).prop_map(|(a, b)| Op::Bind(a, b)),
        (0..apps).prop_map(Op::UnbindAll),
        (0..apps, 0u8..4).prop_map(|(a, k)| Op::AcquireLock(a, k)),
        (0..apps).prop_map(Op::ReleaseAll),
        (0..apps, any::<u8>()).prop_map(|(a, b)| Op::Brightness(a, b)),
        any::<u8>().prop_map(Op::UserBrightness),
        Just(Op::Home),
        Just(Op::Back),
        (0..apps).prop_map(Op::AppHome),
        (0..apps).prop_map(Op::KillApp),
        (1u16..50).prop_map(Op::Advance),
    ]
}

fn build(apps: usize) -> (AndroidSystem, Vec<e_android::sim::Uid>) {
    let mut android = AndroidSystem::new();
    let uids = (0..apps)
        .map(|index| {
            android.install(
                AppManifest::builder(format!("com.fuzz.app{index}"))
                    .activity("Main", true)
                    .service("Worker", true)
                    .permission(Permission::WakeLock)
                    .permission(Permission::WriteSettings)
                    .build(),
            )
        })
        .collect();
    (android, uids)
}

fn apply(android: &mut AndroidSystem, uids: &[e_android::sim::Uid], op: &Op) {
    // Every operation is allowed to fail (process dead, lock missing…);
    // what must never happen is a panic or an invariant violation.
    match op {
        Op::UserLaunch(index) => {
            let _ = android.user_launch(&format!("com.fuzz.app{index}"));
        }
        Op::StartActivity(a, b) => {
            let _ = android.start_activity(
                uids[*a],
                Intent::explicit(format!("com.fuzz.app{b}"), "Main"),
            );
        }
        Op::StartService(a, b) => {
            let _ = android.start_service(
                uids[*a],
                Intent::explicit(format!("com.fuzz.app{b}"), "Worker"),
            );
        }
        Op::StopService(a, b) => {
            let _ = android.stop_service(
                uids[*a],
                Intent::explicit(format!("com.fuzz.app{b}"), "Worker"),
            );
        }
        Op::Bind(a, b) => {
            let _ = android.bind_service(
                uids[*a],
                Intent::explicit(format!("com.fuzz.app{b}"), "Worker"),
            );
        }
        Op::UnbindAll(a) => {
            let connections: Vec<_> = uids
                .iter()
                .flat_map(|&target| {
                    android
                        .running_services_of(target)
                        .iter()
                        .flat_map(|(_, record)| {
                            record
                                .bindings
                                .iter()
                                .filter(|(_, &binder)| binder == uids[*a])
                                .map(|(&connection, _)| connection)
                                .collect::<Vec<_>>()
                        })
                        .collect::<Vec<_>>()
                })
                .collect();
            for connection in connections {
                let _ = android.unbind_service(uids[*a], connection);
            }
        }
        Op::AcquireLock(a, kind) => {
            let kind = match kind {
                0 => WakelockKind::Partial,
                1 => WakelockKind::ScreenDim,
                2 => WakelockKind::ScreenBright,
                _ => WakelockKind::Full,
            };
            let _ = android.acquire_wakelock(uids[*a], kind);
        }
        Op::ReleaseAll(a) => {
            let locks: Vec<_> = android
                .held_wakelocks(uids[*a])
                .iter()
                .map(|lock| lock.id)
                .collect();
            for lock in locks {
                let _ = android.release_wakelock(uids[*a], lock);
            }
        }
        Op::Brightness(a, value) => {
            let _ = android.set_brightness(ChangeSource::App(uids[*a]), *value);
        }
        Op::UserBrightness(value) => {
            let _ = android.set_brightness(ChangeSource::User, *value);
        }
        Op::Home => android.user_press_home(),
        Op::Back => android.user_press_back(),
        Op::AppHome(a) => android.app_open_home(uids[*a]),
        Op::KillApp(a) => {
            let _ = android.kill_app(uids[*a]);
        }
        Op::Advance(_) => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_op_sequences_preserve_accounting_invariants(
        ops in proptest::collection::vec(op_strategy(4), 1..60)
    ) {
        let (mut android, uids) = build(4);
        let mut profiler = Profiler::eandroid(ScreenPolicy::SeparateEntity);

        for op in &ops {
            apply(&mut android, &uids, op);
            let span = match op {
                Op::Advance(ms) => SimDuration::from_millis(u64::from(*ms) * 100),
                _ => SimDuration::from_millis(100),
            };
            profiler.run(&mut android, span);

            // Invariant 1: conservation.
            let ledger = profiler.ledger().grand_total().as_joules();
            let integrated = profiler.integrated_energy().as_joules();
            prop_assert!((ledger - integrated).abs() < 1e-6);

            // Invariant 2: nothing negative, nobody self-charged.
            let graph = profiler.collateral().unwrap();
            for host in graph.hosts() {
                prop_assert_eq!(graph.links(host, Entity::App(host)), 0);
                for (_, energy) in graph.collateral_of(host) {
                    prop_assert!(energy.as_joules() >= 0.0);
                }
            }

            // Invariant 3: system apps are never attack hosts with charges.
            for host in graph.hosts() {
                if host.is_system() {
                    prop_assert!(graph.collateral_total(host).is_zero());
                }
            }
        }
    }

    #[test]
    fn random_op_sequences_are_deterministic(
        ops in proptest::collection::vec(op_strategy(3), 1..40)
    ) {
        let run = |ops: &[Op]| {
            let (mut android, uids) = build(3);
            let mut profiler = Profiler::eandroid(ScreenPolicy::ForegroundApp);
            for op in ops {
                apply(&mut android, &uids, op);
                profiler.run(&mut android, SimDuration::from_millis(100));
            }
            profiler.battery().drained()
        };
        prop_assert_eq!(run(&ops), run(&ops));
    }
}
