//! Integration tests for the reporting layer: detector, attack timeline,
//! and routine-level accounting over real scenario runs.

use e_android::apps::Scenario;
use e_android::core::{
    labels_from, report, AttackTimeline, DetectorConfig, Entity, FlagReason, Profiler, ScreenPolicy,
};

#[test]
fn detector_flags_every_attack_malware() {
    for scenario in Scenario::ALL.into_iter().filter(|s| s.is_attack()) {
        let run = scenario.run(Profiler::eandroid(ScreenPolicy::SeparateEntity));
        let malware = run.malware.unwrap();
        let monitor = run.profiler.monitor().unwrap();
        let findings = report(
            run.profiler.ledger(),
            monitor.graph(),
            monitor.attack_history(),
            &DetectorConfig::default(),
        );
        let finding = findings
            .iter()
            .find(|finding| finding.uid == malware)
            .unwrap_or_else(|| panic!("{}: malware missing from report", scenario.name()));
        assert!(
            !finding.flags.is_empty(),
            "{}: malware not flagged ({finding:?})",
            scenario.name()
        );
        // Background-app attacks (attack #2) flag as ongoing; the stealthier
        // vectors also trip the ratio/energy/screen flags.
        if scenario != Scenario::Attack2BackgroundApps {
            assert!(
                finding.flags.contains(&FlagReason::StealthRatio)
                    || finding.flags.contains(&FlagReason::HighCollateralEnergy)
                    || finding.flags.contains(&FlagReason::ScreenManipulation),
                "{}: expected a substantive flag, got {:?}",
                scenario.name(),
                finding.flags
            );
        }
    }
}

#[test]
fn detector_reports_but_does_not_always_flag_normal_apps() {
    // Scene 1's Message app has high collateral too (it drove the Camera) —
    // the report includes it; the paper's position is that users decide.
    let run = Scenario::Scene1MessageVideo.run(Profiler::eandroid(ScreenPolicy::SeparateEntity));
    let monitor = run.profiler.monitor().unwrap();
    let findings = report(
        run.profiler.ledger(),
        monitor.graph(),
        monitor.attack_history(),
        &DetectorConfig::default(),
    );
    assert!(
        findings
            .iter()
            .any(|finding| finding.uid == run.apps.message),
        "normal collateral consumers are reported"
    );
}

#[test]
fn timeline_matches_scenario_structure() {
    let run = Scenario::Attack4Interrupt.run(Profiler::eandroid(ScreenPolicy::SeparateEntity));
    let labels = labels_from(&run.android);
    let monitor = run.profiler.monitor().unwrap();
    let timeline = AttackTimeline::from_history(monitor.attack_history(), &labels);

    let text = timeline.render();
    assert!(
        text.contains("interrupts"),
        "the interruption period is on the timeline:\n{text}"
    );
    assert!(
        text.contains("holds wakelock on"),
        "the leaked wakelock period is on the timeline:\n{text}"
    );
    // The attack is still running when the scenario ends.
    assert!(!timeline.open_at(run.android.now()).is_empty());
}

#[test]
fn timeline_rows_close_when_attacks_end() {
    let run = Scenario::Scene1MessageVideo.run(Profiler::eandroid(ScreenPolicy::SeparateEntity));
    let labels = labels_from(&run.android);
    let monitor = run.profiler.monitor().unwrap();
    let timeline = AttackTimeline::from_history(monitor.attack_history(), &labels);
    // The user pressed back at the end: the camera returned to the message
    // app; verify at least one period closed with end >= begin.
    assert!(timeline
        .rows
        .iter()
        .all(|row| row.ended_at.is_none_or(|end| end >= row.began_at)));
}

#[test]
fn routine_accounting_exposes_the_pinned_service() {
    let run = Scenario::Attack3BindService
        .run(Profiler::eandroid(ScreenPolicy::SeparateEntity).with_routine_accounting());
    let routines = run.profiler.routines().unwrap();
    let rows = routines.breakdown_of(run.apps.victim);
    let service_energy: f64 = rows
        .iter()
        .filter(|(routine, _)| matches!(routine, e_android::framework::Routine::Service(_)))
        .map(|(_, energy)| energy.as_joules())
        .sum();
    let total = routines.total_of(run.apps.victim).as_joules();
    assert!(
        service_energy > total * 0.5,
        "the pinned Worker dominates the victim's CPU energy \
         ({service_energy:.2} of {total:.2} J)"
    );
    // And the routine partition matches the app's CPU ledger entry.
    let cpu_ledger = run
        .profiler
        .ledger()
        .of(
            Entity::App(run.apps.victim),
            e_android::power::Component::Cpu,
        )
        .as_joules();
    assert!((total - cpu_ledger).abs() < 1e-9);
}
