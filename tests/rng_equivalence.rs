//! Cross-crate seeding equivalence: every layer that derives
//! deterministic streams must use the one splitmix64 family defined in
//! `ea_sim::rng` and re-exported as `ea_core::rng`. A second copy of the
//! finalizer drifting out of sync would silently re-seed the fleet, so
//! these tests pin both the re-export identity and golden output vectors
//! computed from the reference splitmix64 constants.

use e_android::fleet::device_seed;

#[test]
fn core_rng_is_the_sim_rng() {
    for seed in [0u64, 1, 42, 2_026, u64::MAX] {
        for index in [0u64, 1, 7, 63, 1_000] {
            assert_eq!(
                ea_core::rng::splitmix64_stream(seed, index),
                ea_sim::rng::splitmix64_stream(seed, index),
                "re-export must be the same function"
            );
        }
        for lane in [0u64, 5, 11] {
            for layer in [0u64, 1, 3, 9] {
                assert_eq!(
                    ea_core::rng::splitmix64_lane(seed, lane, layer),
                    ea_sim::rng::splitmix64_lane(seed, lane, layer),
                );
            }
        }
        assert_eq!(
            ea_core::rng::splitmix64(seed),
            ea_sim::rng::splitmix64(seed)
        );
    }
    assert_eq!(
        ea_core::rng::SPLITMIX64_GAMMA,
        ea_sim::rng::SPLITMIX64_GAMMA
    );
}

#[test]
fn fleet_device_seeds_follow_the_shared_stream() {
    for fleet_seed in [0u64, 42, 2_026] {
        for index in [0usize, 7, 63] {
            assert_eq!(
                device_seed(fleet_seed, index),
                ea_core::rng::splitmix64_stream(fleet_seed, index as u64),
            );
        }
    }
}

#[test]
fn splitmix_stream_matches_golden_vectors() {
    // Computed independently from the reference splitmix64 constants
    // (finalizer 0xBF58476D1CE4E5B9 / 0x94D049BB133111EB, gamma
    // 0x9E3779B97F4A7C15). Any drift in any layer breaks every fleet
    // seed schedule, so the literals are pinned here.
    assert_eq!(device_seed(2_026, 0), 0xDB9C_5598_9194_8D23);
    assert_eq!(device_seed(2_026, 63), 0x273B_F82E_82FF_421D);
    assert_eq!(device_seed(42, 7), 0xCCF6_35EE_9E9E_2FA4);
    assert_eq!(device_seed(0, 0), 0xE220_A839_7B1D_CDAF);
}

#[test]
fn splitmix_lane_matches_golden_vectors() {
    assert_eq!(
        ea_core::rng::splitmix64_lane(2_026, 0, 1),
        0xDDEA_9E4D_FC0A_D5E1
    );
    assert_eq!(
        ea_core::rng::splitmix64_lane(7, 5, 3),
        0x484B_C94A_52E3_F008
    );
    // splitmix64 is a bijective mix with no hidden increment: the
    // all-zero triple maps to zero.
    assert_eq!(ea_core::rng::splitmix64_lane(0, 0, 0), 0);
    assert_eq!(
        ea_core::rng::splitmix64_lane(31_337, 11, 9),
        0xF859_F45F_512E_18E6
    );
}
