//! End-to-end contract tests for the streaming ingest service: the
//! stream-replayed report is byte-identical to the batch oracle at any
//! lane/job count (including under fault plans), and the socket query
//! surface answers mid-run with valid schema-tagged JSON.

use std::time::Duration;

use e_android::chaos::FaultPlan;
use e_android::fleet::{render, run_fleet, FleetConfig};
use e_android::serve::{query_with_retry, run_serve, Request, ServeConfig};

/// The tentpole guarantee: streaming the same fleet seed through the
/// ingest lanes reproduces the batch report byte for byte, whatever the
/// lane count, and however many jobs the batch engine used.
#[test]
fn stream_replay_is_byte_identical_to_batch_at_any_lane_count() {
    let mut fleet = FleetConfig::smoke(10, 77_001);
    fleet.jobs = 1;
    let (sequential, _) = run_fleet(&fleet);
    fleet.jobs = 4;
    let (parallel, _) = run_fleet(&fleet);
    let oracle = render::to_json(&sequential);
    assert_eq!(oracle, render::to_json(&parallel));

    for lanes in [1, 2, 5] {
        let config = ServeConfig {
            lanes,
            window_events: 16,
            ..ServeConfig::new(fleet.clone())
        };
        let (streamed, stats) = run_serve(&config, None).unwrap_or_else(|error| {
            panic!("serve without a socket cannot fail: {error}");
        });
        assert_eq!(
            oracle,
            render::to_json(&streamed),
            "lanes={lanes} changed the report bytes"
        );
        assert_eq!(stats.lanes, lanes);
    }
}

/// A zero-rate fault plan arms every injector and fires none of them:
/// the streamed report must still match the *unfaulted* batch oracle.
#[test]
fn zero_rate_fault_plan_stream_matches_unfaulted_batch() {
    let fleet = FleetConfig::smoke(6, 31_337);
    let (batch, _) = run_fleet(&fleet);
    let config = ServeConfig {
        lanes: 3,
        ..ServeConfig::new(FleetConfig {
            faults: Some(FaultPlan::zero(99)),
            ..fleet
        })
    };
    let (streamed, _) = run_serve(&config, None)
        .unwrap_or_else(|error| panic!("serve without a socket cannot fail: {error}"));
    assert_eq!(render::to_json(&batch), render::to_json(&streamed));
}

/// An active fault plan (panics, glitches, slow devices) flows through
/// the stream's supervision exactly as through the batch engine's.
#[test]
fn faulted_stream_matches_faulted_batch() {
    let fleet = FleetConfig {
        faults: Some(FaultPlan::uniform(9, 0.3)),
        ..FleetConfig::smoke(6, 44)
    };
    let (batch, _) = run_fleet(&fleet);
    for lanes in [1, 4] {
        let config = ServeConfig {
            lanes,
            ..ServeConfig::new(fleet.clone())
        };
        let (streamed, _) = run_serve(&config, None)
            .unwrap_or_else(|error| panic!("serve without a socket cannot fail: {error}"));
        assert_eq!(
            render::to_json(&batch),
            render::to_json(&streamed),
            "lanes={lanes} changed the faulted report"
        );
    }
}

/// Mid-run socket queries: a `snapshot` answers with valid
/// `ea-metrics/snapshot/v1` JSON while devices are still streaming, and
/// a `report` query blocks until the drained deterministic report.
#[test]
fn snapshot_query_mid_run_returns_valid_schema_json() {
    let socket = std::env::temp_dir().join(format!("ea-serve-test-{}.sock", std::process::id()));
    let fleet = FleetConfig::smoke(12, 5_150);
    let (batch, _) = run_fleet(&fleet);
    let config = ServeConfig {
        lanes: 2,
        socket: Some(socket.clone()),
        // Hold the query server open after drain: the 12-device stream
        // finishes in milliseconds, and without the hold the socket
        // could vanish between our queries.
        hold: true,
        ..ServeConfig::new(fleet)
    };

    let (streamed, stats) = std::thread::scope(|scope| {
        let handle = scope.spawn(|| run_serve(&config, None));
        // Mid-run: the service is binding/streaming right now; retry
        // until the socket answers.
        let snapshot = query_with_retry(&socket, Request::Snapshot, 200, Duration::from_millis(5))
            .unwrap_or_else(|error| panic!("snapshot query failed: {error}"));
        let parsed: e_android::metrics::MetricsSnapshot = serde_json::from_str(&snapshot)
            .unwrap_or_else(|error| panic!("snapshot is not schema JSON: {error}\n{snapshot}"));
        assert_eq!(parsed.schema, "ea-metrics/snapshot/v1");
        assert_eq!(parsed.devices_total, 12);

        let window = query_with_retry(&socket, Request::Window, 5, Duration::from_millis(5))
            .unwrap_or_else(|error| panic!("window query failed: {error}"));
        assert!(
            window.contains("\"schema\":\"ea-serve/window/v1\""),
            "window reply missing schema: {window}"
        );

        // Blocks until drained, then returns the full report as one line.
        let report_line = query_with_retry(&socket, Request::Report, 5, Duration::from_millis(5))
            .unwrap_or_else(|error| panic!("report query failed: {error}"));
        let queried: e_android::fleet::FleetReport = serde_json::from_str(&report_line)
            .unwrap_or_else(|error| panic!("report is not schema JSON: {error}"));
        assert_eq!(render::to_json(&batch), render::to_json(&queried));

        let ack = query_with_retry(&socket, Request::Shutdown, 5, Duration::from_millis(5))
            .unwrap_or_else(|error| panic!("shutdown query failed: {error}"));
        assert!(ack.contains("\"ok\":true"));

        handle
            .join()
            .unwrap_or_else(|_| panic!("serve thread panicked"))
            .unwrap_or_else(|error| panic!("serve failed: {error}"))
    });
    assert_eq!(render::to_json(&batch), render::to_json(&streamed));
    assert!(stats.queries_served >= 4);
    assert!(!socket.exists(), "socket file cleaned up");
}

/// `--hold` keeps the query server answering after the stream drains;
/// a `shutdown` request ends the run.
#[test]
fn held_service_answers_after_drain_until_shutdown() {
    let socket =
        std::env::temp_dir().join(format!("ea-serve-hold-test-{}.sock", std::process::id()));
    let config = ServeConfig {
        lanes: 1,
        hold: true,
        socket: Some(socket.clone()),
        ..ServeConfig::new(FleetConfig::smoke(2, 9))
    };
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| run_serve(&config, None));
        let report_line = query_with_retry(&socket, Request::Report, 200, Duration::from_millis(5))
            .unwrap_or_else(|error| panic!("report query failed: {error}"));
        assert!(report_line.contains("\"devices_completed\":2"));
        // The stream has drained (report answered), yet the service is
        // still up: window totals survive the fold.
        let window = query_with_retry(&socket, Request::Window, 5, Duration::from_millis(5))
            .unwrap_or_else(|error| panic!("window query failed: {error}"));
        assert!(window.contains("\"total_events\":"));
        let ack = query_with_retry(&socket, Request::Shutdown, 5, Duration::from_millis(5))
            .unwrap_or_else(|error| panic!("shutdown query failed: {error}"));
        assert!(ack.contains("\"ok\":true"));
        let (report, _) = handle
            .join()
            .unwrap_or_else(|_| panic!("serve thread panicked"))
            .unwrap_or_else(|error| panic!("serve failed: {error}"));
        assert_eq!(report.devices_completed, 2);
    });
}
