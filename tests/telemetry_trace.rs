//! End-to-end telemetry: the traced pipeline covers every layer, the
//! deterministic JSONL stream is byte-identical across same-seed runs, and
//! the Chrome trace export carries complete spans.

use std::sync::{Arc, OnceLock};

use e_android::apps::Scenario;
use e_android::core::{Profiler, ScreenPolicy};
use e_android::telemetry::{export, Recorder, TelemetryEvent, TelemetrySummary};

/// Runs every scripted scenario under the enhanced profiler into one
/// shared recorder — the same sweep `fig09_effectiveness --trace` records.
fn traced_sweep() -> Arc<Recorder> {
    let recorder = Arc::new(Recorder::new());
    for scenario in Scenario::ALL {
        let profiler = Profiler::eandroid(ScreenPolicy::ForegroundApp);
        let _ = scenario.run_traced(profiler, Arc::clone(&recorder) as Arc<_>);
    }
    recorder
}

/// One sweep shared by the read-only tests.
fn shared_sweep() -> &'static Arc<Recorder> {
    static SWEEP: OnceLock<Arc<Recorder>> = OnceLock::new();
    SWEEP.get_or_init(traced_sweep)
}

fn jsonl_bytes(recorder: &Recorder) -> Vec<u8> {
    let mut out = Vec::new();
    export::write_jsonl(recorder, &mut out).expect("in-memory write");
    out
}

#[test]
fn jsonl_stream_is_byte_identical_across_runs() {
    let first = jsonl_bytes(&traced_sweep());
    let second = jsonl_bytes(&traced_sweep());
    assert!(!first.is_empty());
    assert_eq!(
        first, second,
        "same-seed runs must serialize identical event streams"
    );
}

#[test]
fn trace_covers_every_pipeline_layer() {
    let recorder = shared_sweep();
    let events = recorder.events();
    let has = |predicate: fn(&TelemetryEvent) -> bool| {
        events.iter().any(|record| predicate(&record.event))
    };
    assert!(
        has(|e| matches!(e, TelemetryEvent::Framework { .. })),
        "framework events missing"
    );
    assert!(
        has(|e| matches!(e, TelemetryEvent::Lifecycle { .. })),
        "lifecycle transitions missing"
    );
    assert!(
        has(|e| matches!(e, TelemetryEvent::AttackOpened { .. })),
        "attack opens missing"
    );
    assert!(
        has(|e| matches!(e, TelemetryEvent::AttackClosed { .. })),
        "attack closes missing"
    );
    assert!(
        has(|e| matches!(e, TelemetryEvent::Attribution { .. })),
        "per-interval attribution missing"
    );
    assert!(
        has(|e| matches!(e, TelemetryEvent::BatteryDrain { .. })),
        "battery drain ticks missing"
    );
    assert!(
        has(|e| matches!(e, TelemetryEvent::KernelStats { .. })),
        "kernel statistics missing"
    );

    let metrics = recorder.metrics();
    assert_eq!(
        metrics.counters["events_processed_total"],
        events.len() as u64
    );
    assert!(metrics.histograms.contains_key("attribution_interval_us"));

    let summary = TelemetrySummary::from_recorder(recorder);
    assert_eq!(summary.event_count(), events.len());
    assert!(summary.span_count() > 0);
}

#[test]
fn jsonl_round_trips_through_the_reader() {
    let recorder = shared_sweep();
    let bytes = jsonl_bytes(recorder);
    let text = String::from_utf8(bytes).expect("jsonl is utf-8");
    let replayed = export::read_jsonl(&text).expect("replay parses");
    assert_eq!(replayed, recorder.events());
}

#[test]
fn chrome_trace_parses_with_complete_spans() {
    // One scenario keeps the document small enough to parse quickly in
    // debug builds; span coverage is the same either way.
    let recorder = Arc::new(Recorder::new());
    let profiler = Profiler::eandroid(ScreenPolicy::ForegroundApp);
    let _ = Scenario::Scene1MessageVideo.run_traced(profiler, Arc::clone(&recorder) as Arc<_>);
    let mut out = Vec::new();
    export::write_chrome_trace(&recorder, &mut out).expect("in-memory write");
    let text = String::from_utf8(out).expect("trace is utf-8");
    let value: serde_json::Value = serde_json::from_str(&text).expect("trace.json parses");
    let events = value["traceEvents"].as_array().expect("traceEvents array");
    let complete_spans = events
        .iter()
        .filter(|event| event["ph"].as_str() == Some("X"))
        .count();
    assert!(
        complete_spans >= 1,
        "chrome trace must carry at least one complete span"
    );
}

#[test]
fn untraced_runs_record_nothing() {
    let recorder = Arc::new(Recorder::new());
    let profiler = Profiler::eandroid(ScreenPolicy::ForegroundApp);
    let _ = Scenario::Scene1MessageVideo.run(profiler);
    assert!(recorder.events().is_empty());
    assert!(recorder.spans().is_empty());
}
