//! Workspace-local benchmark harness exposing the criterion API surface
//! the bench crate uses: [`Criterion`], benchmark groups, [`Bencher`],
//! [`BenchmarkId`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros.
//!
//! Timing is intentionally simple: each benchmark warms up briefly, then
//! reports the mean wall-clock time over a fixed measurement window. With
//! `--test` (as `cargo bench -- --test` passes), every benchmark runs a
//! single iteration as a smoke test.

use std::cell::RefCell;
use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export for benchmarks that want to defeat constant-folding.
pub use std::hint::black_box;

/// One completed benchmark measurement, as recorded by [`take_measurements`].
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Full benchmark label (`group/function/parameter`).
    pub label: String,
    /// Mean wall-clock nanoseconds per iteration (0.0 in `--test` mode).
    pub mean_ns: f64,
    /// Iterations timed inside the measurement window.
    pub iterations: u64,
}

thread_local! {
    static MEASUREMENTS: RefCell<Vec<Measurement>> = const { RefCell::new(Vec::new()) };
}

/// Drains every measurement recorded on this thread since the last call.
///
/// Custom `main`s (benches with `harness = false` that post-process their
/// own numbers) run their benchmark groups, then call this to compute
/// ratios or emit machine-readable reports. Entries appear in run order.
pub fn take_measurements() -> Vec<Measurement> {
    MEASUREMENTS.with(|cell| std::mem::take(&mut *cell.borrow_mut()))
}

/// Whether `--test` smoke mode was requested on the command line.
pub fn smoke_mode() -> bool {
    std::env::args().any(|arg| arg == "--test")
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    /// Smoke-test mode: run each benchmark once without timing.
    test_mode: bool,
}

impl Criterion {
    /// Applies command-line flags (`--test` is honored; the rest of the
    /// upstream flag set is accepted and ignored).
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|arg| arg == "--test");
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_benchmark(self.test_mode, &id.to_string(), |bencher| f(bencher));
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; the vendored harness sizes its own
    /// measurement window.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _window: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(self.criterion.test_mode, &label, |bencher| f(bencher));
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(self.criterion.test_mode, &label, |bencher| {
            f(bencher, input)
        });
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark as `function/parameter`.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter label.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Drives the timing loop of one benchmark.
pub struct Bencher {
    test_mode: bool,
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    mean_ns: f64,
    iterations: u64,
}

impl Bencher {
    /// Times `routine`, storing the mean iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.iterations = 1;
            self.mean_ns = 0.0;
            return;
        }
        // Warm-up: run until ~20ms have elapsed to populate caches.
        let warmup = Instant::now();
        while warmup.elapsed() < Duration::from_millis(20) {
            black_box(routine());
        }
        // Measurement: batches of doubling size until ~100ms accumulate.
        let mut total = Duration::ZERO;
        let mut iterations = 0u64;
        let mut batch = 1u64;
        while total < Duration::from_millis(100) {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += start.elapsed();
            iterations += batch;
            batch = batch.saturating_mul(2);
        }
        self.iterations = iterations;
        self.mean_ns = total.as_nanos() as f64 / iterations as f64;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(test_mode: bool, label: &str, mut f: F) {
    let mut bencher = Bencher {
        test_mode,
        mean_ns: 0.0,
        iterations: 0,
    };
    f(&mut bencher);
    MEASUREMENTS.with(|cell| {
        cell.borrow_mut().push(Measurement {
            label: label.to_string(),
            mean_ns: bencher.mean_ns,
            iterations: bencher.iterations,
        })
    });
    if test_mode {
        println!("test {label} ... ok");
    } else if bencher.iterations > 0 {
        println!(
            "bench {label}: {} per iter ({} iterations)",
            format_ns(bencher.mean_ns),
            bencher.iterations
        );
    } else {
        println!("bench {label}: no measurement (Bencher::iter not called)");
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1_000_000_000.0 {
        format!("{:.3} s", ns / 1_000_000_000.0)
    } else if ns >= 1_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:.3} us", ns / 1_000.0)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Bundles benchmark functions into a single runner, as upstream does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
