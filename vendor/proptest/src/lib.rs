//! Workspace-local property-testing harness.
//!
//! Implements the slice of the `proptest` API this workspace uses: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`/`boxed`, range and
//! `any::<T>()` strategies, `collection::vec`, `option::of`,
//! [`prop_oneof!`], and the `prop_assert*` macros. Cases are generated
//! from a seed derived deterministically from the test name and case
//! index, so failures are reproducible; shrinking is not implemented —
//! failures report the offending case index instead.

pub mod test_runner {
    /// Deterministic generator driving test-case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds the generator for one `(test, case)` pair.
        pub fn for_case(test_name: &str, case: u64) -> Self {
            // FNV-1a over the test path, mixed with the case index.
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for byte in test_name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: hash ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// Returns the next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty bound");
            let mut m = (self.next_u64() as u128) * (bound as u128);
            let mut low = m as u64;
            if low < bound {
                let threshold = bound.wrapping_neg() % bound;
                while low < threshold {
                    m = (self.next_u64() as u128) * (bound as u128);
                    low = m as u64;
                }
            }
            (m >> 64) as u64
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// A failed property within a test case.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Number of generated cases per property.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many cases to generate and run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A source of generated values.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `map`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map {
            strategy: self,
            map,
        }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.strategy.generate(rng))
    }
}

/// Object-safe strategy erasure.
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V> {
    inner: Box<dyn DynStrategy<V>>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate_dyn(rng)
    }
}

/// Picks uniformly among type-erased alternatives; built by [`prop_oneof!`].
pub struct Union<V> {
    alternatives: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds the union; at least one alternative is required.
    pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs an alternative");
        Union { alternatives }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.alternatives.len() as u64) as usize;
        self.alternatives[idx].generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<V>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;

    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + rng.below(span) as $ty
                }
            }

            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u64) - (start as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    start + rng.below(span + 1) as $ty
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add(rng.below(span) as i64) as $ty
                }
            }
        )*
    };
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Strategy for the full value space of `T`; see [`any`].
pub struct Any<T> {
    marker: std::marker::PhantomData<T>,
}

/// Generates arbitrary values of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any {
        marker: std::marker::PhantomData,
    }
}

macro_rules! any_int {
    ($($ty:ty),*) => {
        $(impl Strategy for Any<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        })*
    };
}

any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite values spanning many magnitudes, sign included.
        let magnitude = rng.unit_f64() * 600.0 - 300.0;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * magnitude.exp2() * rng.unit_f64()
    }
}

// ---------------------------------------------------------------------------
// Tuples of strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+);)*) => {
        $(impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        })*
    };
}

tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Generates vectors whose length is uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::generate(&self.size, rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// A strategy for `Option<S::Value>`; see [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Yields `Some` half the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Everything a property test module usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let __test_path = concat!(module_path!(), "::", stringify!($name));
                for __case in 0..u64::from(__config.cases) {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__test_path, __case);
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__err) = __outcome {
                        panic!("{__test_path} failed at case {__case}: {__err}");
                    }
                }
            }
        )*
    };
}

/// Fails the enclosing property when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the enclosing property when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            __l,
            __r
        );
    }};
}

/// Fails the enclosing property when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "{}\n  both: {:?}",
            format!($($fmt)+),
            __l
        );
    }};
}

/// Picks uniformly among the listed strategies (all must share a value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}
