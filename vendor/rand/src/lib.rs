//! Workspace-local subset of the `rand` 0.8 API.
//!
//! Provides the trait surface this workspace relies on — [`RngCore`],
//! [`SeedableRng`], and the blanket [`Rng`] extension with `gen`,
//! `gen_range`, and `gen_bool` — with the same value-derivation rules as
//! upstream where determinism is observable (e.g. `f64` sampling uses the
//! standard 53-bit mantissa construction).

use std::fmt;
use std::ops::Range;

/// Error type for fallible RNG operations.
#[derive(Debug)]
pub struct Error {
    message: &'static str,
}

impl Error {
    /// Builds an error with a static message.
    pub fn new(message: &'static str) -> Self {
        Error { message }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.message)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes, reporting failure (infallible for
    /// deterministic generators).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: Sized + Default + AsRef<[u8]> + AsMut<[u8]>;

    /// Builds the generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it over the full seed
    /// width so distinct inputs yield well-separated states.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 (Steele et al.) output function.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z = z ^ (z >> 31);
            let bytes = (z as u32).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleRange: Sized {
    /// Draws a uniform sample from `range`.
    fn sample(range: Range<Self>, rng: &mut dyn RngCore) -> Self;
}

impl SampleRange for u64 {
    fn sample(range: Range<Self>, rng: &mut dyn RngCore) -> Self {
        assert!(range.start < range.end, "empty range in gen_range");
        let span = range.end - range.start;
        // Widening-multiply rejection sampling (Lemire), bias-free.
        let mut x = rng.next_u64();
        let mut m = (x as u128) * (span as u128);
        let mut low = m as u64;
        if low < span {
            let threshold = span.wrapping_neg() % span;
            while low < threshold {
                x = rng.next_u64();
                m = (x as u128) * (span as u128);
                low = m as u64;
            }
        }
        range.start + (m >> 64) as u64
    }
}

impl SampleRange for u32 {
    fn sample(range: Range<Self>, rng: &mut dyn RngCore) -> Self {
        u64::sample(u64::from(range.start)..u64::from(range.end), rng) as u32
    }
}

impl SampleRange for usize {
    fn sample(range: Range<Self>, rng: &mut dyn RngCore) -> Self {
        u64::sample(range.start as u64..range.end as u64, rng) as usize
    }
}

impl SampleRange for i64 {
    fn sample(range: Range<Self>, rng: &mut dyn RngCore) -> Self {
        assert!(range.start < range.end, "empty range in gen_range");
        let span = range.end.wrapping_sub(range.start) as u64;
        let offset = u64::sample(0..span, rng);
        range.start.wrapping_add(offset as i64)
    }
}

impl SampleRange for f64 {
    fn sample(range: Range<Self>, rng: &mut dyn RngCore) -> Self {
        assert!(range.start < range.end, "empty range in gen_range");
        let unit = sample_unit_f64(rng);
        range.start + unit * (range.end - range.start)
    }
}

/// Uniform in `[0, 1)` from 53 random mantissa bits, as upstream's
/// `Standard` distribution does.
fn sample_unit_f64(rng: &mut dyn RngCore) -> f64 {
    let bits = rng.next_u64() >> 11;
    bits as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Convenience extension over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open range.
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(range, self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        sample_unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Standard-distribution sampling, backing [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a sample from the type's standard distribution.
    fn sample_standard(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        sample_unit_f64(rng)
    }
}

impl Standard for u64 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u32() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(0usize..3);
            assert!(i < 3);
        }
    }

    #[test]
    fn unit_f64_is_half_open() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
