//! Workspace-local ChaCha8-based random number generator.
//!
//! Implements the real ChaCha8 stream cipher core (Bernstein), exposed
//! through the vendored `rand` traits. Output is fully deterministic per
//! seed, which is all the simulation layer requires.

use rand::{RngCore, SeedableRng};

/// A deterministic RNG backed by the ChaCha stream cipher with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, 256-bit key, 64-bit counter, nonce.
    state: [u32; 16],
    /// Current 64-byte output block, as sixteen words.
    block: [u32; 16],
    /// Next unread word of `block`; 16 means exhausted.
    word_pos: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds of column + diagonal quarter-rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.word_pos = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.word_pos >= 16 {
            self.refill();
        }
        let word = self.block[self.word_pos];
        self.word_pos += 1;
        word
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (word, chunk) in state[4..12].iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            block: [0u32; 16],
            word_pos: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let low = u64::from(self.next_word());
        let high = u64::from(self.next_word());
        high << 32 | low
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_word().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(1234);
        let mut b = ChaCha8Rng::seed_from_u64(1234);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fill_bytes_matches_words() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let mut buf = [0u8; 8];
        a.fill_bytes(&mut buf);
        let expected_low = b.next_u32().to_le_bytes();
        let expected_high = b.next_u32().to_le_bytes();
        assert_eq!(&buf[..4], &expected_low);
        assert_eq!(&buf[4..], &expected_high);
    }

    #[test]
    fn counter_advances_across_blocks() {
        // 16 words per block: word 17 must differ from word 1.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let next = rng.next_u32();
        assert_ne!(first[0], next);
    }
}
