//! Generic deserialization over an owned, self-describing content tree.
//!
//! Instead of upstream serde's visitor machinery, deserializers in this
//! workspace produce an owned [`Content`] tree (the JSON data model) and
//! [`Deserialize`] impls pull typed values back out of it. The generic
//! trait signatures match upstream, so hand-written impls such as the
//! `#[serde(with = ...)]` helper modules compile unchanged.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Display;
use std::marker::PhantomData;

/// Errors produced while deserializing.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// An owned node of the self-describing data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// Null / unit / `None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Content>),
    /// A map, in insertion order.
    Map(Vec<(Content, Content)>),
}

impl Content {
    /// The content as a map key string, when it is a string.
    pub fn as_key(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// A data format that can yield the self-describing data model.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;
    /// Consumes the deserializer, producing its full content tree.
    fn deserialize_content(self) -> Result<Content, Self::Error>;
}

/// A type that can be deserialized from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from `deserializer`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A [`Deserializer`] over an already-materialized [`Content`] tree,
/// parameterized on the error type of the outer format.
pub struct ContentDeserializer<E> {
    content: Content,
    marker: PhantomData<E>,
}

impl<E> ContentDeserializer<E> {
    /// Wraps a content node.
    pub fn new(content: Content) -> Self {
        ContentDeserializer {
            content,
            marker: PhantomData,
        }
    }
}

impl<'de, E: Error> Deserializer<'de> for ContentDeserializer<E> {
    type Error = E;

    fn deserialize_content(self) -> Result<Content, E> {
        Ok(self.content)
    }
}

/// Deserializes a `T` from an owned content node. This is the workhorse of
/// derive-generated code.
pub fn from_content<'de, T: Deserialize<'de>, E: Error>(content: Content) -> Result<T, E> {
    T::deserialize(ContentDeserializer::<E>::new(content))
}

fn unexpected<E: Error>(expected: &str, got: &Content) -> E {
    E::custom(format_args!("expected {expected}, found {}", got.kind()))
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Bool(v) => Ok(v),
            other => Err(unexpected("bool", &other)),
        }
    }
}

macro_rules! deserialize_unsigned {
    ($($ty:ty),*) => {
        $(impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let content = deserializer.deserialize_content()?;
                let value = match content {
                    Content::U64(v) => v,
                    other => return Err(unexpected("unsigned integer", &other)),
                };
                <$ty>::try_from(value).map_err(|_| {
                    D::Error::custom(format_args!(
                        "integer {value} out of range for {}",
                        stringify!($ty)
                    ))
                })
            }
        })*
    };
}

deserialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! deserialize_signed {
    ($($ty:ty),*) => {
        $(impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let content = deserializer.deserialize_content()?;
                let value: i64 = match content {
                    Content::I64(v) => v,
                    Content::U64(v) => i64::try_from(v).map_err(|_| {
                        D::Error::custom(format_args!("integer {v} out of range"))
                    })?,
                    other => return Err(unexpected("integer", &other)),
                };
                <$ty>::try_from(value).map_err(|_| {
                    D::Error::custom(format_args!(
                        "integer {value} out of range for {}",
                        stringify!($ty)
                    ))
                })
            }
        })*
    };
}

deserialize_signed!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::F64(v) => Ok(v),
            Content::U64(v) => Ok(v as f64),
            Content::I64(v) => Ok(v as f64),
            other => Err(unexpected("number", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Str(s) => Ok(s),
            other => Err(unexpected("string", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(D::Error::custom("expected a single-character string")),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Null => Ok(()),
            other => Err(unexpected("null", &other)),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Null => Ok(None),
            content => from_content::<T, D::Error>(content).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

fn content_seq<'de, D: Deserializer<'de>>(deserializer: D) -> Result<Vec<Content>, D::Error> {
    match deserializer.deserialize_content()? {
        Content::Seq(items) => Ok(items),
        other => Err(unexpected("sequence", &other)),
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        content_seq(deserializer)?
            .into_iter()
            .map(from_content::<T, D::Error>)
            .collect()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for VecDeque<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        content_seq(deserializer)?
            .into_iter()
            .map(from_content::<T, D::Error>)
            .collect()
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        content_seq(deserializer)?
            .into_iter()
            .map(from_content::<T, D::Error>)
            .collect()
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Map(pairs) => pairs
                .into_iter()
                .map(|(key, value)| {
                    Ok((
                        from_content::<K, D::Error>(key)?,
                        from_content::<V, D::Error>(value)?,
                    ))
                })
                .collect(),
            other => Err(unexpected("map", &other)),
        }
    }
}

macro_rules! deserialize_tuple {
    ($(($($name:ident),+) with $len:expr;)*) => {
        $(impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<Des: Deserializer<'de>>(deserializer: Des) -> Result<Self, Des::Error> {
                let items = content_seq(deserializer)?;
                if items.len() != $len {
                    return Err(Des::Error::custom(format_args!(
                        "expected a tuple of length {}, found {}",
                        $len,
                        items.len()
                    )));
                }
                let mut items = items.into_iter();
                Ok(($(from_content::<$name, Des::Error>(
                    items.next().expect("length checked"),
                )?,)+))
            }
        })*
    };
}

deserialize_tuple! {
    (A) with 1;
    (A, B) with 2;
    (A, B, C) with 3;
    (A, B, C, D) with 4;
    (A, B, C, D, E) with 5;
    (A, B, C, D, E, F) with 6;
}
