//! A workspace-local subset of the `serde` serialization framework.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements exactly the serde surface the repository uses: the generic
//! [`Serialize`]/[`Serializer`] traits (visitor-style, compound serializers
//! included), an owned self-describing [`de::Content`] tree that powers
//! [`Deserialize`], and a derive macro (`serde_derive`, re-exported under
//! the `derive` feature) covering structs, tuple structs, and all four
//! enum variant shapes with externally-tagged representation, matching
//! upstream serde's JSON data model.

#![forbid(unsafe_code)]

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
