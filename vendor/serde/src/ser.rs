//! Generic serialization: the `Serialize` / `Serializer` traits.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Display;

/// Errors produced while serializing.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A type that can be serialized into any [`Serializer`].
pub trait Serialize {
    /// Serializes `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Compound serializer for sequences, tuples, and tuple structs/variants.
pub trait SerializeSeq {
    /// Final output type.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes the next element.
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer for maps.
pub trait SerializeMap {
    /// Final output type.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes the next key.
    fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), Self::Error>;
    /// Serializes the next value.
    fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer for structs and struct variants.
pub trait SerializeStruct {
    /// Final output type.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes the next named field.
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// A data format that can serialize the serde data model.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Compound serializer for sequences/tuples.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for structs and struct variants.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes the unit value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Some(value)`.
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype enum variant.
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begins a sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins a tuple enum variant.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begins a struct.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begins a struct enum variant.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;

    /// Serializes an `i8` (delegates to [`Serializer::serialize_i64`]).
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(i64::from(v))
    }
    /// Serializes an `i16`.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(i64::from(v))
    }
    /// Serializes an `i32`.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(i64::from(v))
    }
    /// Serializes a `u8`.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(u64::from(v))
    }
    /// Serializes a `u16`.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(u64::from(v))
    }
    /// Serializes a `u32`.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(u64::from(v))
    }
    /// Serializes an `f32`.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error> {
        self.serialize_f64(f64::from(v))
    }
    /// Serializes a `char` as a one-character string.
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error> {
        self.serialize_str(v.encode_utf8(&mut [0u8; 4]))
    }
    /// Serializes a unit struct.
    fn serialize_unit_struct(self, _name: &'static str) -> Result<Self::Ok, Self::Error> {
        self.serialize_unit()
    }
    /// Serializes a newtype struct transparently.
    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error> {
        value.serialize(self)
    }
    /// Begins a tuple (same encoding as a sequence).
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeSeq, Self::Error> {
        self.serialize_seq(Some(len))
    }
    /// Begins a tuple struct (same encoding as a sequence).
    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeSeq, Self::Error> {
        self.serialize_seq(Some(len))
    }
    /// Serializes every item of `iter` as a sequence.
    fn collect_seq<I>(self, iter: I) -> Result<Self::Ok, Self::Error>
    where
        I: IntoIterator,
        I::Item: Serialize,
    {
        let iter = iter.into_iter();
        let mut seq = self.serialize_seq(iter.size_hint().1)?;
        for item in iter {
            seq.serialize_element(&item)?;
        }
        seq.end()
    }
    /// Serializes every pair of `iter` as a map.
    fn collect_map<K, V, I>(self, iter: I) -> Result<Self::Ok, Self::Error>
    where
        K: Serialize,
        V: Serialize,
        I: IntoIterator<Item = (K, V)>,
    {
        let iter = iter.into_iter();
        let mut map = self.serialize_map(iter.size_hint().1)?;
        for (key, value) in iter {
            map.serialize_key(&key)?;
            map.serialize_value(&value)?;
        }
        map.end()
    }
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! serialize_via {
    ($($ty:ty => $method:ident),* $(,)?) => {
        $(impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self)
            }
        })*
    };
}

serialize_via! {
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    f32 => serialize_f32,
    f64 => serialize_f64,
    char => serialize_char,
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: ?Sized + Serialize> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(value) => serializer.serialize_some(value),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.iter())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.iter())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.iter())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.iter())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_map(self.iter())
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+) with $len:expr;)*) => {
        $(impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut seq = serializer.serialize_tuple($len)?;
                $(seq.serialize_element(&self.$idx)?;)+
                seq.end()
            }
        })*
    };
}

serialize_tuple! {
    (A.0) with 1;
    (A.0, B.1) with 2;
    (A.0, B.1, C.2) with 3;
    (A.0, B.1, C.2, D.3) with 4;
    (A.0, B.1, C.2, D.3, E.4) with 5;
    (A.0, B.1, C.2, D.3, E.4, F.5) with 6;
}
