//! Derive macros for the vendored serde subset.
//!
//! The macros parse the item from its token-stream rendering with a small
//! hand-written parser (`parse.rs`) and emit externally-tagged
//! serialization code matching upstream serde's JSON data model. Supported:
//! non-generic structs (named, tuple, unit) and enums (unit, newtype,
//! tuple, struct variants), plus the `#[serde(with = "path")]` field
//! attribute.

use proc_macro::TokenStream;
use std::fmt::Write as _;

mod parse;

use parse::{Field, Item, Parser, Variant, VariantShape};

fn parse_input(input: TokenStream) -> Item {
    let src = input.to_string();
    Parser::new(&src)
        .and_then(|mut parser| parser.parse_item())
        .unwrap_or_else(|error| panic!("serde_derive (vendored): {error}\nitem: {src}"))
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    let mut out = String::new();
    match &item {
        Item::NamedStruct { name, fields } => {
            let mut body = String::new();
            let _ = writeln!(
                body,
                "let mut __state = serde::Serializer::serialize_struct(__serializer, \"{name}\", {})?;",
                fields.len()
            );
            for field in fields {
                body.push_str(&serialize_field_stmt(
                    field,
                    &format!("&self.{}", field.name),
                ));
            }
            body.push_str("serde::ser::SerializeStruct::end(__state)");
            push_serialize_impl(&mut out, name, &body);
        }
        Item::TupleStruct { name, arity: 1 } => {
            push_serialize_impl(
                &mut out,
                name,
                &format!(
                    "serde::Serializer::serialize_newtype_struct(__serializer, \"{name}\", &self.0)"
                ),
            );
        }
        Item::TupleStruct { name, arity } => {
            let mut body = String::new();
            let _ = writeln!(
                body,
                "let mut __state = serde::Serializer::serialize_tuple_struct(__serializer, \"{name}\", {arity})?;"
            );
            for idx in 0..*arity {
                let _ = writeln!(
                    body,
                    "serde::ser::SerializeSeq::serialize_element(&mut __state, &self.{idx})?;"
                );
            }
            body.push_str("serde::ser::SerializeSeq::end(__state)");
            push_serialize_impl(&mut out, name, &body);
        }
        Item::UnitStruct { name } => {
            push_serialize_impl(
                &mut out,
                name,
                &format!("serde::Serializer::serialize_unit_struct(__serializer, \"{name}\")"),
            );
        }
        Item::Enum { name, variants } => {
            let mut body = String::from("match self {\n");
            for (index, variant) in variants.iter().enumerate() {
                let vname = &variant.name;
                match &variant.shape {
                    VariantShape::Unit => {
                        let _ = writeln!(
                            body,
                            "{name}::{vname} => serde::Serializer::serialize_unit_variant(__serializer, \"{name}\", {index}u32, \"{vname}\"),"
                        );
                    }
                    VariantShape::Tuple(1) => {
                        let _ = writeln!(
                            body,
                            "{name}::{vname}(__f0) => serde::Serializer::serialize_newtype_variant(__serializer, \"{name}\", {index}u32, \"{vname}\", __f0),"
                        );
                    }
                    VariantShape::Tuple(arity) => {
                        let binders: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let _ = writeln!(
                            body,
                            "{name}::{vname}({}) => {{ let mut __state = serde::Serializer::serialize_tuple_variant(__serializer, \"{name}\", {index}u32, \"{vname}\", {arity})?;",
                            binders.join(", ")
                        );
                        for binder in &binders {
                            let _ = writeln!(
                                body,
                                "serde::ser::SerializeSeq::serialize_element(&mut __state, {binder})?;"
                            );
                        }
                        body.push_str("serde::ser::SerializeSeq::end(__state) }\n");
                    }
                    VariantShape::Struct(fields) => {
                        let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let _ = writeln!(
                            body,
                            "{name}::{vname} {{ {} }} => {{ let mut __state = serde::Serializer::serialize_struct_variant(__serializer, \"{name}\", {index}u32, \"{vname}\", {})?;",
                            binders.join(", "),
                            fields.len()
                        );
                        for field in fields {
                            body.push_str(&serialize_struct_variant_field(field));
                        }
                        body.push_str("serde::ser::SerializeStruct::end(__state) }\n");
                    }
                }
            }
            body.push('}');
            push_serialize_impl(&mut out, name, &body);
        }
    }
    out.parse().expect("generated Serialize impl parses")
}

fn push_serialize_impl(out: &mut String, name: &str, body: &str) {
    let _ = write!(
        out,
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
             fn serialize<__S: serde::Serializer>(&self, __serializer: __S) -> Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    );
}

/// `state.serialize_field(...)` for one named struct field, honoring
/// `#[serde(with = "path")]`.
fn serialize_field_stmt(field: &Field, value_expr: &str) -> String {
    let fname = &field.name;
    match &field.with {
        None => format!(
            "serde::ser::SerializeStruct::serialize_field(&mut __state, \"{fname}\", {value_expr})?;\n"
        ),
        Some(path) => {
            let ty = &field.ty;
            format!(
                "{{\n\
                     struct __SerdeWith<'a>(&'a {ty});\n\
                     impl<'a> serde::Serialize for __SerdeWith<'a> {{\n\
                         fn serialize<__S: serde::Serializer>(&self, __serializer: __S) -> Result<__S::Ok, __S::Error> {{\n\
                             {path}::serialize(self.0, __serializer)\n\
                         }}\n\
                     }}\n\
                     serde::ser::SerializeStruct::serialize_field(&mut __state, \"{fname}\", &__SerdeWith({value_expr}))?;\n\
                 }}\n"
            )
        }
    }
}

/// Same as [`serialize_field_stmt`] but for struct-variant bindings (the
/// field is already a reference binding named after itself).
fn serialize_struct_variant_field(field: &Field) -> String {
    let fname = &field.name;
    match &field.with {
        None => format!(
            "serde::ser::SerializeStruct::serialize_field(&mut __state, \"{fname}\", {fname})?;\n"
        ),
        Some(path) => {
            let ty = &field.ty;
            format!(
                "{{\n\
                     struct __SerdeWith<'a>(&'a {ty});\n\
                     impl<'a> serde::Serialize for __SerdeWith<'a> {{\n\
                         fn serialize<__S: serde::Serializer>(&self, __serializer: __S) -> Result<__S::Ok, __S::Error> {{\n\
                             {path}::serialize(self.0, __serializer)\n\
                         }}\n\
                     }}\n\
                     serde::ser::SerializeStruct::serialize_field(&mut __state, \"{fname}\", &__SerdeWith({fname}))?;\n\
                 }}\n"
            )
        }
    }
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    let mut out = String::new();
    match &item {
        Item::NamedStruct { name, fields } => {
            let body = deserialize_named_fields_body(name, fields, name);
            push_deserialize_impl(&mut out, name, &body);
        }
        Item::TupleStruct { name, arity: 1 } => {
            let body = format!(
                "let __content = serde::de::Deserializer::deserialize_content(__deserializer)?;\n\
                 Ok({name}(serde::de::from_content::<_, __D::Error>(__content)?))"
            );
            push_deserialize_impl(&mut out, name, &body);
        }
        Item::TupleStruct { name, arity } => {
            let body = deserialize_tuple_body(
                name,
                *arity,
                "serde::de::Deserializer::deserialize_content(__deserializer)?",
                name,
            );
            push_deserialize_impl(&mut out, name, &body);
        }
        Item::UnitStruct { name } => {
            let body = format!(
                "match serde::de::Deserializer::deserialize_content(__deserializer)? {{\n\
                     serde::de::Content::Null => Ok({name}),\n\
                     __other => Err(<__D::Error as serde::de::Error>::custom(format_args!(\n\
                         \"expected null for unit struct {name}, found {{}}\", __other.kind()))),\n\
                 }}"
            );
            push_deserialize_impl(&mut out, name, &body);
        }
        Item::Enum { name, variants } => {
            let body = deserialize_enum_body(name, variants);
            push_deserialize_impl(&mut out, name, &body);
        }
    }
    out.parse().expect("generated Deserialize impl parses")
}

fn push_deserialize_impl(out: &mut String, name: &str, body: &str) {
    let _ = write!(
        out,
        "#[automatically_derived]\n\
         impl<'de> serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: serde::Deserializer<'de>>(__deserializer: __D) -> Result<Self, __D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    );
}

/// Body that parses `__content_expr` (a map) into `constructor { fields }`.
fn deserialize_named_fields_from_pairs(
    type_label: &str,
    fields: &[Field],
    constructor: &str,
) -> String {
    let mut body = String::new();
    for (idx, field) in fields.iter().enumerate() {
        let ty = &field.ty;
        let _ = writeln!(body, "let mut __field{idx}: Option<{ty}> = None;");
    }
    body.push_str("for (__key, __value) in __pairs {\n");
    body.push_str("match serde::de::Content::as_key(&__key) {\n");
    for (idx, field) in fields.iter().enumerate() {
        let fname = &field.name;
        let expr = match &field.with {
            None => "serde::de::from_content::<_, __D::Error>(__value)?".to_string(),
            Some(path) => format!(
                "{path}::deserialize(serde::de::ContentDeserializer::<__D::Error>::new(__value))?"
            ),
        };
        let _ = writeln!(
            body,
            "Some(\"{fname}\") => {{ __field{idx} = Some({expr}); }}"
        );
    }
    body.push_str("_ => {}\n}\n}\n");
    let _ = writeln!(body, "Ok({constructor} {{");
    for (idx, field) in fields.iter().enumerate() {
        let fname = &field.name;
        let missing = if field.ty.trim_start().starts_with("Option") {
            "None".to_string()
        } else {
            format!(
                "return Err(<__D::Error as serde::de::Error>::custom(\
                     \"missing field `{fname}` in {type_label}\"))"
            )
        };
        let _ = writeln!(
            body,
            "{fname}: match __field{idx} {{ Some(__v) => __v, None => {missing} }},"
        );
    }
    body.push_str("})");
    body
}

fn deserialize_named_fields_body(type_label: &str, fields: &[Field], constructor: &str) -> String {
    let mut body = String::from(
        "let __content = serde::de::Deserializer::deserialize_content(__deserializer)?;\n",
    );
    let _ = writeln!(
        body,
        "let __pairs = match __content {{\n\
             serde::de::Content::Map(__m) => __m,\n\
             __other => return Err(<__D::Error as serde::de::Error>::custom(format_args!(\n\
                 \"expected map for {type_label}, found {{}}\", __other.kind()))),\n\
         }};"
    );
    body.push_str(&deserialize_named_fields_from_pairs(
        type_label,
        fields,
        constructor,
    ));
    body
}

/// Body that parses `content_expr` (a sequence) into `constructor(..)`.
fn deserialize_tuple_body(
    constructor: &str,
    arity: usize,
    content_expr: &str,
    type_label: &str,
) -> String {
    let mut body = String::new();
    let _ = writeln!(
        body,
        "let __items = match {content_expr} {{\n\
             serde::de::Content::Seq(__items) => __items,\n\
             __other => return Err(<__D::Error as serde::de::Error>::custom(format_args!(\n\
                 \"expected sequence for {type_label}, found {{}}\", __other.kind()))),\n\
         }};"
    );
    let _ = writeln!(
        body,
        "if __items.len() != {arity} {{\n\
             return Err(<__D::Error as serde::de::Error>::custom(format_args!(\n\
                 \"expected {arity} elements for {type_label}, found {{}}\", __items.len())));\n\
         }}\n\
         let mut __items = __items.into_iter();"
    );
    let _ = write!(body, "Ok({constructor}(");
    for _ in 0..arity {
        body.push_str(
            "serde::de::from_content::<_, __D::Error>(__items.next().expect(\"length checked\"))?, ",
        );
    }
    body.push_str("))");
    body
}

fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut body = String::from(
        "let __content = serde::de::Deserializer::deserialize_content(__deserializer)?;\n\
         match __content {\n",
    );
    // Unit variants arrive as bare strings.
    body.push_str("serde::de::Content::Str(__s) => match __s.as_str() {\n");
    for variant in variants {
        if matches!(variant.shape, VariantShape::Unit) {
            let vname = &variant.name;
            let _ = writeln!(body, "\"{vname}\" => Ok({name}::{vname}),");
        }
    }
    let _ = writeln!(
        body,
        "__other => Err(<__D::Error as serde::de::Error>::custom(format_args!(\n\
             \"unknown variant `{{__other}}` of enum {name}\"))),\n\
         }},"
    );
    // Data-carrying variants arrive as single-entry maps.
    body.push_str(
        "serde::de::Content::Map(__m) if __m.len() == 1 => {\n\
             let (__key, __value) = __m.into_iter().next().expect(\"length checked\");\n\
             let __variant = match serde::de::Content::as_key(&__key) {\n\
                 Some(__s) => __s.to_string(),\n\
                 None => return Err(<__D::Error as serde::de::Error>::custom(\n\
                     \"enum variant key must be a string\")),\n\
             };\n\
             match __variant.as_str() {\n",
    );
    for variant in variants {
        let vname = &variant.name;
        match &variant.shape {
            VariantShape::Unit => {}
            VariantShape::Tuple(1) => {
                let _ = writeln!(
                    body,
                    "\"{vname}\" => Ok({name}::{vname}(serde::de::from_content::<_, __D::Error>(__value)?)),"
                );
            }
            VariantShape::Tuple(arity) => {
                let inner = deserialize_tuple_body(
                    &format!("{name}::{vname}"),
                    *arity,
                    "__value",
                    &format!("variant {name}::{vname}"),
                );
                let _ = writeln!(body, "\"{vname}\" => {{ {inner} }}");
            }
            VariantShape::Struct(fields) => {
                let mut inner = format!(
                    "let __pairs = match __value {{\n\
                         serde::de::Content::Map(__m) => __m,\n\
                         __other => return Err(<__D::Error as serde::de::Error>::custom(format_args!(\n\
                             \"expected map for variant {name}::{vname}, found {{}}\", __other.kind()))),\n\
                     }};\n"
                );
                inner.push_str(&deserialize_named_fields_from_pairs(
                    &format!("variant {name}::{vname}"),
                    fields,
                    &format!("{name}::{vname}"),
                ));
                let _ = writeln!(body, "\"{vname}\" => {{ {inner} }}");
            }
        }
    }
    let _ = writeln!(
        body,
        "__other => Err(<__D::Error as serde::de::Error>::custom(format_args!(\n\
             \"unknown variant `{{__other}}` of enum {name}\"))),\n\
         }}\n\
         }},"
    );
    let _ = writeln!(
        body,
        "__other => Err(<__D::Error as serde::de::Error>::custom(format_args!(\n\
             \"expected string or single-entry map for enum {name}, found {{}}\", __other.kind()))),\n\
         }}"
    );
    body
}
