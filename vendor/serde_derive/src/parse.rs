//! A small lexer + parser for the `struct`/`enum` items handed to the
//! derive macros. Works on the `TokenStream::to_string()` rendering of the
//! item, which lets field types be spliced back into generated code as
//! verbatim source slices.

#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    /// Any literal (string, char, number); payload is the source text.
    Literal(String),
    /// `::` kept as one token so spliced paths stay valid.
    PathSep,
    Punct(char),
}

#[derive(Debug, Clone)]
pub struct Spanned {
    pub tok: Tok,
    pub start: usize,
    pub end: usize,
}

pub fn lex(src: &str) -> Result<Vec<Spanned>, String> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Doc comments come back as `///`/`/** */` lines in the rendered
        // token stream; skip all comment forms.
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            i += 2;
            while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                i += 1;
            }
            i = (i + 2).min(bytes.len());
            continue;
        }
        let start = i;
        if c == '"' {
            i += 1;
            while i < bytes.len() {
                match bytes[i] as char {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
            toks.push(Spanned {
                tok: Tok::Literal(src[start..i].to_string()),
                start,
                end: i,
            });
        } else if c == '\'' {
            // Lifetime (`'a`) or char literal (`'x'`, `'\n'`).
            let mut j = i + 1;
            while j < bytes.len() && ((bytes[j] as char).is_alphanumeric() || bytes[j] == b'_') {
                j += 1;
            }
            if j > i + 1 && (j >= bytes.len() || bytes[j] != b'\'') {
                // Lifetime: treat as a literal token (kept verbatim in types).
                toks.push(Spanned {
                    tok: Tok::Literal(src[start..j].to_string()),
                    start,
                    end: j,
                });
                i = j;
            } else {
                // Char literal.
                i += 1;
                while i < bytes.len() {
                    match bytes[i] as char {
                        '\\' => i += 2,
                        '\'' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                toks.push(Spanned {
                    tok: Tok::Literal(src[start..i].to_string()),
                    start,
                    end: i,
                });
            }
        } else if c.is_alphabetic() || c == '_' {
            let mut j = i + 1;
            while j < bytes.len() && ((bytes[j] as char).is_alphanumeric() || bytes[j] == b'_') {
                j += 1;
            }
            toks.push(Spanned {
                tok: Tok::Ident(src[i..j].to_string()),
                start,
                end: j,
            });
            i = j;
        } else if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < bytes.len()
                && ((bytes[j] as char).is_alphanumeric() || bytes[j] == b'_' || bytes[j] == b'.')
            {
                j += 1;
            }
            toks.push(Spanned {
                tok: Tok::Literal(src[i..j].to_string()),
                start,
                end: j,
            });
            i = j;
        } else if c == ':' && i + 1 < bytes.len() && bytes[i + 1] == b':' {
            toks.push(Spanned {
                tok: Tok::PathSep,
                start,
                end: i + 2,
            });
            i += 2;
        } else {
            toks.push(Spanned {
                tok: Tok::Punct(c),
                start,
                end: i + 1,
            });
            i += 1;
        }
    }
    Ok(toks)
}

/// One parsed field of a struct or struct variant.
#[derive(Debug, Clone)]
pub struct Field {
    pub name: String,
    /// Verbatim source of the field type.
    pub ty: String,
    /// Module path from `#[serde(with = "path")]`, when present.
    pub with: Option<String>,
}

#[derive(Debug, Clone)]
pub enum VariantShape {
    Unit,
    /// Tuple variant with this many fields.
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug, Clone)]
pub struct Variant {
    pub name: String,
    pub shape: VariantShape,
}

#[derive(Debug)]
pub enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

pub struct Parser<'a> {
    src: &'a str,
    toks: Vec<Spanned>,
    pos: usize,
}

impl<'a> Parser<'a> {
    pub fn new(src: &'a str) -> Result<Self, String> {
        Ok(Parser {
            src,
            toks: lex(src)?,
            pos: 0,
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn bump(&mut self) -> Option<Spanned> {
        let tok = self.toks.get(self.pos).cloned();
        self.pos += 1;
        tok
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Punct(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<(), String> {
        if self.eat_punct(c) {
            Ok(())
        } else {
            Err(format!("expected `{c}`, found {:?}", self.peek()))
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.bump().map(|s| s.tok) {
            Some(Tok::Ident(name)) => Ok(name),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    /// Skips a balanced group starting at an open delimiter already peeked.
    fn skip_group(&mut self) -> Result<(), String> {
        let open = match self.bump().map(|s| s.tok) {
            Some(Tok::Punct(c @ ('(' | '[' | '{'))) => c,
            other => return Err(format!("expected open delimiter, found {other:?}")),
        };
        let close = match open {
            '(' => ')',
            '[' => ']',
            _ => '}',
        };
        let mut depth = 1usize;
        while depth > 0 {
            match self.bump().map(|s| s.tok) {
                Some(Tok::Punct(c)) if c == open => depth += 1,
                Some(Tok::Punct(c)) if c == close => depth -= 1,
                Some(_) => {}
                None => return Err("unbalanced delimiters".into()),
            }
        }
        Ok(())
    }

    /// Skips attributes; returns `with = "path"` if a serde attr carries one.
    fn skip_attrs(&mut self) -> Result<Option<String>, String> {
        let mut with = None;
        while self.peek() == Some(&Tok::Punct('#')) {
            self.pos += 1;
            // Look inside `[serde (...)]` for `with = "..."`.
            let group_start = self.pos;
            self.skip_group()?;
            let group: &[Spanned] = &self.toks[group_start..self.pos];
            if group.len() >= 3 && group[1].tok == Tok::Ident("serde".to_string()) {
                let mut k = 2;
                while k + 2 < group.len() {
                    if group[k].tok == Tok::Ident("with".to_string())
                        && group[k + 1].tok == Tok::Punct('=')
                    {
                        if let Tok::Literal(lit) = &group[k + 2].tok {
                            with = Some(lit.trim_matches('"').to_string());
                        }
                    }
                    k += 1;
                }
            }
        }
        Ok(with)
    }

    fn skip_visibility(&mut self) -> Result<(), String> {
        if self.peek() == Some(&Tok::Ident("pub".to_string())) {
            self.pos += 1;
            if self.peek() == Some(&Tok::Punct('(')) {
                self.skip_group()?;
            }
        }
        Ok(())
    }

    /// Consumes tokens of a type until a top-level `,` or the closing
    /// delimiter `stop`, returning the verbatim source slice.
    fn parse_type(&mut self, stop: char) -> Result<String, String> {
        let mut depth = 0isize;
        let start = match self.toks.get(self.pos) {
            Some(s) => s.start,
            None => return Err("expected a type".into()),
        };
        let mut end = start;
        loop {
            match self.peek() {
                None => return Err("unterminated type".into()),
                Some(Tok::Punct(c)) => {
                    let c = *c;
                    if depth == 0 && (c == ',' || c == stop) {
                        break;
                    }
                    match c {
                        '<' | '(' | '[' => depth += 1,
                        '>' | ')' | ']' => {
                            if depth == 0 && c == stop {
                                break;
                            }
                            depth -= 1;
                        }
                        _ => {}
                    }
                }
                Some(_) => {}
            }
            end = self.toks[self.pos].end;
            self.pos += 1;
        }
        Ok(self.src[start..end].to_string())
    }

    fn parse_named_fields(&mut self) -> Result<Vec<Field>, String> {
        self.expect_punct('{')?;
        let mut fields = Vec::new();
        loop {
            if self.eat_punct('}') {
                break;
            }
            let with = self.skip_attrs()?;
            if self.eat_punct('}') {
                break;
            }
            self.skip_visibility()?;
            let name = self.expect_ident()?;
            self.expect_punct(':')?;
            let ty = self.parse_type('}')?;
            fields.push(Field { name, ty, with });
            if !self.eat_punct(',') {
                self.expect_punct('}')?;
                break;
            }
        }
        Ok(fields)
    }

    /// Counts the fields of a tuple struct/variant body `( ... )`.
    fn parse_tuple_arity(&mut self) -> Result<usize, String> {
        self.expect_punct('(')?;
        let mut arity = 0usize;
        loop {
            if self.eat_punct(')') {
                break;
            }
            let _ = self.skip_attrs()?;
            if self.eat_punct(')') {
                break;
            }
            self.skip_visibility()?;
            let _ty = self.parse_type(')')?;
            arity += 1;
            if !self.eat_punct(',') {
                self.expect_punct(')')?;
                break;
            }
        }
        Ok(arity)
    }

    pub fn parse_item(&mut self) -> Result<Item, String> {
        let _ = self.skip_attrs()?;
        self.skip_visibility()?;
        let keyword = self.expect_ident()?;
        let name = self.expect_ident()?;
        if self.peek() == Some(&Tok::Punct('<')) {
            return Err(format!(
                "serde_derive (vendored): generics on `{name}` are not supported"
            ));
        }
        match keyword.as_str() {
            "struct" => {
                if self.peek() == Some(&Tok::Punct('{')) {
                    Ok(Item::NamedStruct {
                        name,
                        fields: self.parse_named_fields()?,
                    })
                } else if self.peek() == Some(&Tok::Punct('(')) {
                    let arity = self.parse_tuple_arity()?;
                    Ok(Item::TupleStruct { name, arity })
                } else {
                    Ok(Item::UnitStruct { name })
                }
            }
            "enum" => {
                self.expect_punct('{')?;
                let mut variants = Vec::new();
                loop {
                    if self.eat_punct('}') {
                        break;
                    }
                    let _ = self.skip_attrs()?;
                    if self.eat_punct('}') {
                        break;
                    }
                    let vname = self.expect_ident()?;
                    let shape = match self.peek() {
                        Some(Tok::Punct('(')) => VariantShape::Tuple(self.parse_tuple_arity()?),
                        Some(Tok::Punct('{')) => VariantShape::Struct(self.parse_named_fields()?),
                        _ => VariantShape::Unit,
                    };
                    variants.push(Variant { name: vname, shape });
                    if !self.eat_punct(',') {
                        self.expect_punct('}')?;
                        break;
                    }
                }
                Ok(Item::Enum { name, variants })
            }
            other => Err(format!("cannot derive serde traits for `{other}` items")),
        }
    }
}
