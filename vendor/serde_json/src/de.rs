//! JSON parsing into the vendored serde content tree.

use crate::Error;
use serde::de::{Content, Deserialize, Deserializer};

/// Parses `input` as JSON and deserializes a `T` from it.
pub fn from_str<'de, T: Deserialize<'de>>(input: &str) -> Result<T, Error> {
    let mut parser = JsonParser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let content = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::deserialize(JsonDeserializer { content })
}

struct JsonDeserializer {
    content: Content,
}

impl<'de> Deserializer<'de> for JsonDeserializer {
    type Error = Error;

    fn deserialize_content(self) -> Result<Content, Error> {
        Ok(self.content)
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn error(&self, message: impl Into<String>) -> Error {
        Error::new(format!("{} at byte {}", message.into(), self.pos))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", b as char)))
        }
    }

    fn expect_keyword(&mut self, keyword: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(())
        } else {
            Err(self.error(format!("expected `{keyword}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Content::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Content::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Content::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_whitespace();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    self.skip_whitespace();
                    items.push(self.parse_value()?);
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(self.error("expected `,` or `]`")),
                    }
                }
                Ok(Content::Seq(items))
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_whitespace();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(pairs));
                }
                loop {
                    self.skip_whitespace();
                    let key = self.parse_string().map(Content::Str)?;
                    self.skip_whitespace();
                    self.expect(b':')?;
                    self.skip_whitespace();
                    let value = self.parse_value()?;
                    pairs.push((key, value));
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(self.error("expected `,` or `}`")),
                    }
                }
                Ok(Content::Map(pairs))
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(b) => Err(self.error(format!("unexpected character `{}`", b as char))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let unit = self.parse_hex4()?;
                            let c = if (0xd800..0xdc00).contains(&unit) {
                                // High surrogate: a `\uXXXX` low surrogate
                                // must follow.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let scalar = 0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(scalar)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume a contiguous run of unescaped characters in
                    // one slice; the input is a `&str`, and the run ends on
                    // an ASCII delimiter, so the chunk is valid UTF-8.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let unit =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos += 4;
        Ok(unit)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits and punctuation are ASCII");
        if is_float {
            return text
                .parse::<f64>()
                .map(Content::F64)
                .map_err(|_| self.error(format!("invalid number `{text}`")));
        }
        if let Some(magnitude) = text.strip_prefix('-') {
            if let Ok(v) = magnitude.parse::<u64>() {
                if let Ok(v) = i64::try_from(v) {
                    return Ok(Content::I64(-v));
                }
                if v == i64::MIN.unsigned_abs() {
                    return Ok(Content::I64(i64::MIN));
                }
            }
        } else if let Ok(v) = text.parse::<u64>() {
            return Ok(Content::U64(v));
        }
        // Integer out of 64-bit range: fall back to the float reading.
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }
}
