//! Workspace-local JSON support for the vendored serde subset.
//!
//! Provides the small slice of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], and a dynamic
//! [`Value`] type. Numbers parse from their original source text with
//! `f64::from_str` and print with Rust's shortest-round-trip formatting,
//! so `f64` values survive a serialize/deserialize round trip exactly.

mod de;
mod ser;
mod value;

pub use de::from_str;
pub use error::Error;
pub use ser::{to_string, to_string_pretty};
pub use value::Value;

mod error {
    use std::fmt;

    /// Errors from JSON serialization or parsing.
    #[derive(Debug)]
    pub struct Error {
        message: String,
    }

    impl Error {
        pub(crate) fn new(message: impl Into<String>) -> Self {
            Error {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for Error {}

    impl serde::ser::Error for Error {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            Error::new(msg.to_string())
        }
    }

    impl serde::de::Error for Error {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            Error::new(msg.to_string())
        }
    }
}
