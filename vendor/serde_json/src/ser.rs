//! JSON output: compact and pretty writers over the vendored serde model.

use crate::Error;
use serde::ser::{SerializeMap, SerializeSeq, SerializeStruct};
use serde::{Serialize, Serializer};
use std::fmt::Write as _;

/// Serializes `value` as compact JSON.
pub fn to_string<T: ?Sized + Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize(JsonSerializer {
        out: &mut out,
        pretty: false,
        depth: 0,
    })?;
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: ?Sized + Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize(JsonSerializer {
        out: &mut out,
        pretty: true,
        depth: 0,
    })?;
    Ok(out)
}

pub(crate) fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's Display is shortest-round-trip, so values survive a
        // serialize/parse cycle exactly.
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

struct JsonSerializer<'a> {
    out: &'a mut String,
    pretty: bool,
    depth: usize,
}

impl<'a> JsonSerializer<'a> {
    fn reborrow(&mut self) -> JsonSerializer<'_> {
        JsonSerializer {
            out: self.out,
            pretty: self.pretty,
            depth: self.depth,
        }
    }
}

fn newline_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// In-progress JSON array or object.
pub struct Compound<'a> {
    ser: JsonSerializer<'a>,
    /// Closing delimiter(s): `]`, `}`, or both for enum variant
    /// wrappers like `{"Variant":[...]}`.
    close: &'static str,
    has_elements: bool,
}

impl<'a> Compound<'a> {
    fn element_prefix(&mut self) {
        if self.has_elements {
            self.ser.out.push(',');
        }
        if self.ser.pretty {
            newline_indent(self.ser.out, self.ser.depth + 1);
        }
        self.has_elements = true;
    }

    fn finish(self) -> Result<(), Error> {
        if self.ser.pretty && self.has_elements {
            newline_indent(self.ser.out, self.ser.depth);
        }
        self.ser.out.push_str(self.close);
        Ok(())
    }
}

impl<'a> SerializeSeq for Compound<'a> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
        self.element_prefix();
        let mut inner = self.ser.reborrow();
        inner.depth += 1;
        value.serialize(inner)
    }

    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl<'a> SerializeMap for Compound<'a> {
    type Ok = ();
    type Error = Error;

    fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), Error> {
        self.element_prefix();
        key.serialize(KeySerializer { out: self.ser.out })
    }

    fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
        self.ser.out.push(':');
        if self.ser.pretty {
            self.ser.out.push(' ');
        }
        let mut inner = self.ser.reborrow();
        inner.depth += 1;
        value.serialize(inner)
    }

    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl<'a> SerializeStruct for Compound<'a> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        SerializeMap::serialize_key(self, name)?;
        SerializeMap::serialize_value(self, value)
    }

    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl<'a> Serializer for JsonSerializer<'a> {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), Error> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<(), Error> {
        let _ = write!(self.out, "{v}");
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<(), Error> {
        let _ = write!(self.out, "{v}");
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), Error> {
        write_f64(self.out, v);
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), Error> {
        write_escaped(self.out, v);
        Ok(())
    }

    fn serialize_unit(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_none(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<(), Error> {
        value.serialize(self)
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<(), Error> {
        self.serialize_str(variant)
    }

    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        mut self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        let mut map = self.reborrow().serialize_map(Some(1))?;
        map.serialize_key(&variant)?;
        map.serialize_value(value)?;
        SerializeMap::end(map)
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<Compound<'a>, Error> {
        self.out.push('[');
        Ok(Compound {
            ser: self,
            close: "]",
            has_elements: false,
        })
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, Error> {
        // Externally tagged: {"Variant": [ ... ]} — emit the key, then hand
        // back an open array positioned one level deeper.
        let pretty = self.pretty;
        let depth = self.depth;
        self.out.push('{');
        if pretty {
            newline_indent(self.out, depth + 1);
        }
        write_escaped(self.out, variant);
        self.out.push(':');
        if pretty {
            self.out.push(' ');
        }
        self.out.push('[');
        Ok(Compound {
            ser: JsonSerializer {
                out: self.out,
                pretty,
                depth: depth + 1,
            },
            close: "]}",
            has_elements: false,
        })
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<Compound<'a>, Error> {
        self.out.push('{');
        Ok(Compound {
            ser: self,
            close: "}",
            has_elements: false,
        })
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Compound<'a>, Error> {
        self.out.push('{');
        Ok(Compound {
            ser: self,
            close: "}",
            has_elements: false,
        })
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, Error> {
        let pretty = self.pretty;
        let depth = self.depth;
        self.out.push('{');
        if pretty {
            newline_indent(self.out, depth + 1);
        }
        write_escaped(self.out, variant);
        self.out.push(':');
        if pretty {
            self.out.push(' ');
        }
        self.out.push('{');
        Ok(Compound {
            ser: JsonSerializer {
                out: self.out,
                pretty,
                depth: depth + 1,
            },
            close: "}}",
            has_elements: false,
        })
    }
}

/// Serializer for map keys: strings pass through, integers are quoted, the
/// rest is rejected (JSON object keys must be strings).
struct KeySerializer<'a> {
    out: &'a mut String,
}

/// Key positions cannot hold compound values; this type is uninhabited-ish
/// glue to satisfy the associated-type bounds.
pub struct NoCompound {
    never: std::convert::Infallible,
}

impl SerializeSeq for NoCompound {
    type Ok = ();
    type Error = Error;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, _value: &T) -> Result<(), Error> {
        match self.never {}
    }
    fn end(self) -> Result<(), Error> {
        match self.never {}
    }
}

impl SerializeMap for NoCompound {
    type Ok = ();
    type Error = Error;
    fn serialize_key<T: ?Sized + Serialize>(&mut self, _key: &T) -> Result<(), Error> {
        match self.never {}
    }
    fn serialize_value<T: ?Sized + Serialize>(&mut self, _value: &T) -> Result<(), Error> {
        match self.never {}
    }
    fn end(self) -> Result<(), Error> {
        match self.never {}
    }
}

impl SerializeStruct for NoCompound {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        _name: &'static str,
        _value: &T,
    ) -> Result<(), Error> {
        match self.never {}
    }
    fn end(self) -> Result<(), Error> {
        match self.never {}
    }
}

fn key_error() -> Error {
    serde::ser::Error::custom("JSON object keys must be strings or integers")
}

impl<'a> Serializer for KeySerializer<'a> {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = NoCompound;
    type SerializeMap = NoCompound;
    type SerializeStruct = NoCompound;

    fn serialize_bool(self, _v: bool) -> Result<(), Error> {
        Err(key_error())
    }

    fn serialize_i64(self, v: i64) -> Result<(), Error> {
        let _ = write!(self.out, "\"{v}\"");
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<(), Error> {
        let _ = write!(self.out, "\"{v}\"");
        Ok(())
    }

    fn serialize_f64(self, _v: f64) -> Result<(), Error> {
        Err(key_error())
    }

    fn serialize_str(self, v: &str) -> Result<(), Error> {
        write_escaped(self.out, v);
        Ok(())
    }

    fn serialize_unit(self) -> Result<(), Error> {
        Err(key_error())
    }

    fn serialize_none(self) -> Result<(), Error> {
        Err(key_error())
    }

    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<(), Error> {
        value.serialize(self)
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<(), Error> {
        self.serialize_str(variant)
    }

    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        _value: &T,
    ) -> Result<(), Error> {
        Err(key_error())
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<NoCompound, Error> {
        Err(key_error())
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<NoCompound, Error> {
        Err(key_error())
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<NoCompound, Error> {
        Err(key_error())
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<NoCompound, Error> {
        Err(key_error())
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<NoCompound, Error> {
        Err(key_error())
    }
}
