//! A dynamically-typed JSON value.

use serde::de::{Content, Deserialize, Deserializer};
use serde::{Serialize, Serializer};
use std::ops::Index;

/// Any JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in document order.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The value as `&str`, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `f64`, when it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `u64`, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `bool`, when it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an array, when it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Value::Null => serializer.serialize_unit(),
            Value::Bool(v) => serializer.serialize_bool(*v),
            Value::U64(v) => serializer.serialize_u64(*v),
            Value::I64(v) => serializer.serialize_i64(*v),
            Value::F64(v) => serializer.serialize_f64(*v),
            Value::String(s) => serializer.serialize_str(s),
            Value::Array(items) => serializer.collect_seq(items.iter()),
            Value::Object(pairs) => {
                serializer.collect_map(pairs.iter().map(|(k, v)| (k.as_str(), v)))
            }
        }
    }
}

fn from_content(content: Content) -> Value {
    match content {
        Content::Null => Value::Null,
        Content::Bool(v) => Value::Bool(v),
        Content::U64(v) => Value::U64(v),
        Content::I64(v) => Value::I64(v),
        Content::F64(v) => Value::F64(v),
        Content::Str(s) => Value::String(s),
        Content::Seq(items) => Value::Array(items.into_iter().map(from_content).collect()),
        Content::Map(pairs) => Value::Object(
            pairs
                .into_iter()
                .map(|(k, v)| {
                    let key = match k {
                        Content::Str(s) => s,
                        other => format!("{other:?}"),
                    };
                    (key, from_content(v))
                })
                .collect(),
        ),
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(from_content(deserializer.deserialize_content()?))
    }
}
